//! Sharded ZMSQ — a NUMA-oriented extension.
//!
//! The paper's evaluation pins to one socket because "our algorithms are
//! not NUMA-aware" (§4). The standard recipe for NUMA scaling is
//! sharding: one queue per socket/shard, producers insert into their own
//! shard, consumers extract from the better of two randomly chosen
//! shards (the MultiQueue's power-of-two-choices argument, §2.1), with a
//! full sweep as the emptiness fallback.
//!
//! Relaxation composes: each shard individually honours the `k × batch`
//! window bound; across shards the two-choice policy adds a MultiQueue-
//! style probabilistic rank error. Unlike the MultiQueue, the sweep
//! fallback preserves ZMSQ's headline guarantee in a slightly weakened
//! form: `extract_max` returns `None` only if every shard *individually*
//! reported empty during the sweep (no spurious failure due to
//! contention — but an element inserted into an already-swept shard
//! concurrently with the sweep can be missed, exactly as it could be
//! missed by a linearizable queue if the extract linearized first).

use zmsq_sync::{RawTryLock, TatasLock};

use crate::config::ZmsqConfig;
use crate::queue::Zmsq;
use crate::set::{ListSet, NodeSet};

/// A fixed set of ZMSQ shards with thread-affine insertion and
/// two-choice extraction.
pub struct ShardedZmsq<V, S = ListSet<V>, L = TatasLock>
where
    V: Send,
    S: NodeSet<V>,
    L: RawTryLock,
{
    shards: Box<[Zmsq<V, S, L>]>,
}

impl<V: Send, S: NodeSet<V>, L: RawTryLock> ShardedZmsq<V, S, L> {
    /// Create `shards` queues (rounded up to a power of two), each with
    /// the given configuration.
    pub fn new(shards: usize, cfg: ZmsqConfig) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Zmsq::with_config(cfg.clone())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// This thread's home shard (stable per thread, round-robin assigned).
    fn home_shard(&self) -> usize {
        use std::cell::Cell;
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static HOME: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        HOME.with(|h| {
            let mut v = h.get();
            if v == usize::MAX {
                v = NEXT.fetch_add(1, Ordering::Relaxed);
                h.set(v);
            }
            v & (self.shards.len() - 1)
        })
    }

    fn random_shard(&self) -> usize {
        crate::rng::next_index(self.shards.len())
    }

    /// Insert into the calling thread's home shard (locality; on a real
    /// NUMA machine, pin threads so the home shard's memory is local).
    pub fn insert(&self, prio: u64, value: V) {
        self.shards[self.home_shard()].insert(prio, value);
    }

    /// Extract from the better of two random shards (by optimistic root
    /// max), sweeping every shard before concluding empty.
    pub fn extract_max(&self) -> Option<(u64, V)> {
        if self.shards.len() == 1 {
            return self.shards[0].extract_max();
        }
        let (a, b) = (self.random_shard(), self.random_shard());
        let pick = if self.shards[a].peek_max_hint() >= self.shards[b].peek_max_hint() {
            a
        } else {
            b
        };
        if let Some(got) = self.shards[pick].extract_max() {
            return Some(got);
        }
        // Sweep fallback: preserves no-spurious-failure per shard.
        let start = self.random_shard();
        for i in 0..self.shards.len() {
            let s = (start + i) & (self.shards.len() - 1);
            if let Some(got) = self.shards[s].extract_max() {
                return Some(got);
            }
        }
        None
    }

    /// Sum of shard size hints.
    pub fn len_hint(&self) -> usize {
        self.shards.iter().map(|s| s.len_hint()).sum()
    }

    /// Access a shard directly (diagnostics, per-shard stats).
    pub fn shard(&self, i: usize) -> &Zmsq<V, S, L> {
        &self.shards[i]
    }
}

impl<V: Send + 'static, S: NodeSet<V> + 'static, L: RawTryLock + 'static>
    pq_traits::ConcurrentPriorityQueue<V> for ShardedZmsq<V, S, L>
{
    fn insert(&self, prio: u64, value: V) {
        ShardedZmsq::insert(self, prio, value)
    }
    fn extract_max(&self) -> Option<(u64, V)> {
        ShardedZmsq::extract_max(self)
    }
    fn name(&self) -> String {
        format!("zmsq-sharded-{}", self.shards.len())
    }
    fn len_hint(&self) -> usize {
        self.len_hint()
    }
    fn metrics(&self) -> Option<obs::Snapshot> {
        // Sum the per-shard operation counters into one queue-level view.
        let mut total = crate::StatsSnapshot::default();
        for sh in &self.shards {
            let s = sh.stats();
            total.inserts += s.inserts;
            total.insert_retries += s.insert_retries;
            total.forced_inserts += s.forced_inserts;
            total.min_swap_inserts += s.min_swap_inserts;
            total.fast_pool_inserts += s.fast_pool_inserts;
            total.splits += s.splits;
            total.tree_grows += s.tree_grows;
            total.extracts += s.extracts;
            total.pool_hits += s.pool_hits;
            total.pool_refills += s.pool_refills;
            total.root_extracts += s.root_extracts;
            total.swap_downs += s.swap_downs;
            total.empty_observed += s.empty_observed;
            total.trylock_fails += s.trylock_fails;
        }
        let mut snap = total.to_obs();
        snap.push_gauge("zmsq.shards", self.shards.len() as i64);
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn shard_count_rounds_up() {
        let q: ShardedZmsq<u64> = ShardedZmsq::new(3, ZmsqConfig::default());
        assert_eq!(q.shard_count(), 4);
        let q1: ShardedZmsq<u64> = ShardedZmsq::new(1, ZmsqConfig::default());
        assert_eq!(q1.shard_count(), 1);
    }

    #[test]
    fn roundtrip_conserves_across_shards() {
        let q: ShardedZmsq<u64> =
            ShardedZmsq::new(4, ZmsqConfig::default().batch(8).target_len(12));
        let got = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (q, got) = (&q, &got);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        q.insert((t * 5000 + i) % 7777, i);
                        if i % 2 == 0 && q.extract_max().is_some() {
                            got.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let mut rest = 0u64;
        while q.extract_max().is_some() {
            rest += 1;
        }
        assert_eq!(got.into_inner() + rest, 20_000);
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn returns_high_elements() {
        let q: ShardedZmsq<u64> =
            ShardedZmsq::new(2, ZmsqConfig::default().batch(16).target_len(24));
        for i in 0..20_000u64 {
            q.insert(i, i);
        }
        let mut sum = 0u64;
        for _ in 0..200 {
            sum += q.extract_max().unwrap().0;
        }
        assert!(sum / 200 > 17_000, "two-choice extraction rank too low");
    }

    #[test]
    fn sweep_finds_lone_element() {
        // A single element in one shard must always be found by the sweep,
        // regardless of which shards the two choices pick.
        let q: ShardedZmsq<u64> = ShardedZmsq::new(8, ZmsqConfig::default());
        for round in 0..200u64 {
            q.insert(round, round);
            assert!(q.extract_max().is_some(), "sweep missed the lone element");
        }
        assert_eq!(q.extract_max(), None);
    }
}
