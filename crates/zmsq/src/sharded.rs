//! Sharded ZMSQ — an adaptive, load-aware multi-queue runtime.
//!
//! The paper's evaluation pins to one socket because "our algorithms are
//! not NUMA-aware" (§4). The standard recipe for NUMA scaling is
//! sharding: one queue per socket/shard, producers insert into their own
//! shard, consumers extract from the better of two randomly chosen
//! *distinct* shards (the MultiQueue's power-of-two-choices argument,
//! §2.1), with a full sweep as the emptiness fallback.
//!
//! Beyond the basic wrapper, this runtime is load-aware in three ways:
//!
//! * **Per-instance thread registration.** Each queue instance assigns
//!   home shards from its own round-robin counter, cached per thread per
//!   instance — two queues of different sizes on the same thread get
//!   independent, evenly spread assignments (an earlier revision used one
//!   `static` counter inside the generic impl, which is shared per
//!   *monomorphization* across every instance and skews toward shard 0).
//! * **Stale-hint-aware extraction.** The two-choice pick compares racy
//!   `peek_max_hint`s that reflect the trees, not the pools. When the
//!   winner comes up empty the loser is tried next — one bounded
//!   work-steal — before paying for the full sweep. Ties between equal
//!   hints are broken randomly so equal shards wear evenly.
//! * **An adaptive batch controller.** With
//!   [`ZmsqConfig::adaptive_batch`], each shard's pool-refill batch moves
//!   within `batch_min..=batch_max` driven by the observed root
//!   contention. §4.2 measures the root-access ratio at `1/(batch + 1)`:
//!   widening the batch is precisely what relieves a contended root, and
//!   narrowing it tightens the relaxation window again when contention
//!   subsides (k-LSM makes the same batch-tracks-contention argument).
//!   The signal is the per-shard `trylock_fails + refill_races` delta —
//!   both count a second extractor arriving at the root while a refill
//!   is in flight, which is exactly the event a wider batch amortizes.
//!
//! Relaxation composes: each shard individually honours its top-`k`
//! window bound (at the *current* effective batch — `batch_max` is the
//! worst case); across shards the two-choice policy adds a MultiQueue-
//! style probabilistic rank tail. See DESIGN.md's sharded section for
//! the composed bound. Unlike the MultiQueue, the sweep fallback
//! preserves ZMSQ's headline guarantee in a slightly weakened form:
//! `extract_max` returns `None` only if every shard *individually*
//! reported empty during the sweep (no spurious failure due to
//! contention — but an element inserted into an already-swept shard
//! concurrently with the sweep can be missed, exactly as it could be
//! missed by a linearizable queue if the extract linearized first).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

use pq_traits::InsertError;
use zmsq_sync::{RawTryLock, SlotVec, TatasLock};

use crate::config::ZmsqConfig;
use crate::queue::Zmsq;
use crate::set::{ListSet, NodeSet};
use crate::StatsSnapshot;

/// Tuning knobs for the MultiQueue-grade fast path: *stickiness* (a
/// thread reuses its sampled shard for `c` consecutive operations) and
/// per-thread *operation buffers* (inserts and prefetched deletions are
/// staged thread-locally and moved in batches), per "Engineering
/// MultiQueues" (Williams & Sanders). Both default to off, which keeps
/// the legacy home-affine / two-choice-per-op behaviour byte-identical.
///
/// Accuracy composes: stickiness `c` and a delete buffer of depth
/// `k_del` add (at most) a `(S − 1) · c · k_del` deterministic term on
/// top of the per-shard top-`k` window — each of the other `S − 1`
/// threads' sticky runs can route up to `c` refills of `k_del` elements
/// past a higher-priority element. See DESIGN.md "Stickiness &
/// operation buffers" for the composed bound and the flush triggers.
///
/// Buffers are *invisible* to the capacity/shedding machinery, so the
/// fast path disarms itself when [`ZmsqConfig::capacity`] is set: a
/// bounded queue always runs the legacy admission path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedConfig {
    stickiness: usize,
    insert_buffer: usize,
    delete_buffer: usize,
}

impl ShardedConfig {
    /// All knobs off (legacy behaviour).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reuse the sampled shard for `c` consecutive operations before
    /// re-sampling. `0` keeps the legacy policy (home-affine inserts,
    /// fresh two-choice pick per extraction); `1` re-samples a random
    /// shard every operation (the classic MultiQueue), larger values
    /// amortize the pick and improve locality at a bounded rank cost.
    pub fn stickiness(mut self, c: usize) -> Self {
        self.stickiness = c;
        self
    }

    /// Stage up to `k` inserts thread-locally before publishing them to
    /// the sticky shard in one batch. `0`/`1` disable staging.
    pub fn insert_buffer(mut self, k: usize) -> Self {
        self.insert_buffer = k;
        self
    }

    /// Prefetch up to `k` elements from the sticky shard per refill and
    /// serve extractions from the thread-local buffer. `0`/`1` disable
    /// prefetching.
    pub fn delete_buffer(mut self, k: usize) -> Self {
        self.delete_buffer = k;
        self
    }

    /// Configured stickiness run length.
    pub fn stickiness_len(&self) -> usize {
        self.stickiness
    }

    /// Configured insert-buffer depth.
    pub fn insert_buffer_depth(&self) -> usize {
        self.insert_buffer
    }

    /// Configured delete-buffer depth.
    pub fn delete_buffer_depth(&self) -> usize {
        self.delete_buffer
    }

    /// Whether any knob departs from the legacy behaviour.
    pub fn is_tuned(&self) -> bool {
        self.stickiness >= 1 || self.insert_buffer > 1 || self.delete_buffer > 1
    }
}

/// Per-`(thread, instance)` operation buffer, owned by the queue (in a
/// [`SlotVec`]) so `close()`/`flush()`/empty-reporting can reach every
/// thread's staged elements without that thread's cooperation — the
/// k-LSM thread-local-spill model.
struct OpBuf<V> {
    /// Staged inserts bound for `ins_shard`.
    ins: Vec<(u64, V)>,
    /// Prefetched extractions, sorted ascending by priority (pop from
    /// the end yields the buffer's max).
    del: Vec<(u64, V)>,
    /// Sticky insert target and operations left in the current run.
    ins_shard: usize,
    ins_left: usize,
    /// Sticky extract source and operations left in the current run.
    del_shard: usize,
    del_left: usize,
}

impl<V> Default for OpBuf<V> {
    fn default() -> Self {
        Self {
            ins: Vec::new(),
            del: Vec::new(),
            ins_shard: 0,
            ins_left: 0,
            del_shard: 0,
            del_left: 0,
        }
    }
}

/// One registered `(thread, instance)` buffer slot. The owner tag lets
/// a thread whose cache entry was evicted find and reuse its old slot —
/// see [`ShardedZmsq::buf_slot`]. `owner` is [`FREE_SLOT`] while the
/// slot sits on the registry's free list awaiting a new registrant;
/// transitions to `FREE_SLOT` happen only under the slot's `buf` mutex
/// (see [`SlotTryFree::try_free`]), which is what makes the users' lock-
/// then-revalidate protocol race-free.
struct BufSlot<V> {
    owner: AtomicU64,
    buf: Mutex<OpBuf<V>>,
}

/// `owner` value of an unowned slot. [`zmsq_sync::thread_tag`] starts
/// at 1, so 0 never collides with a real thread.
const FREE_SLOT: u64 = 0;

/// Type-erased hook for returning an evicted buffer slot to its
/// registry. The per-thread slot cache ([`BUF_SLOTS`]) is shared across
/// every monomorphization of [`ShardedZmsq`], so eviction can only reach
/// the owning registry through a `dyn` handle; a dead `Weak` (instance
/// already dropped) makes the eviction a no-op.
trait SlotTryFree: Send + Sync {
    /// Release `slot` to the free list iff both its buffers are empty
    /// and it is still owned by `owner`. Returns whether it was freed.
    /// A slot with staged elements is left owned — this hook has no
    /// shard access to flush into, and the owner can still rediscover
    /// the slot by tag scan on its next registration.
    fn try_free(&self, slot: usize, owner: u64) -> bool;
}

impl<V: Send + 'static> SlotTryFree for SlotVec<BufSlot<V>> {
    fn try_free(&self, slot: usize, owner: u64) -> bool {
        if slot >= self.len() {
            return false;
        }
        let s = self.get(slot);
        let b = lock_buf(&s.buf);
        if !b.ins.is_empty() || !b.del.is_empty() {
            return false;
        }
        // Ownership change under the buf mutex: a user that locked the
        // slot before us re-validates `owner` after its lock and backs
        // off when it lost this race.
        if s.owner
            .compare_exchange(owner, FREE_SLOT, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        drop(b);
        self.release(slot);
        true
    }
}

/// Source of unique instance ids. A module-level (non-generic) static:
/// ids are process-unique across every monomorphization, which is what
/// makes the per-thread home cache collision-free.
static INSTANCE_IDS: AtomicU64 = AtomicU64::new(1);

/// Per-thread cache of `(instance id, home shard)` assignments. A small
/// linear-scan vec: threads touch a handful of queue instances in
/// practice. When it overflows, the oldest entries are evicted — a
/// re-registration just draws a fresh round-robin slot, which is
/// harmless (home shards are a locality hint, not a correctness
/// invariant).
const HOME_CACHE_CAP: usize = 64;
thread_local! {
    static HOMES: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// One entry of the per-thread buffer-slot cache: which slot of which
/// instance's registry this thread owns, plus the type-erased handle
/// eviction uses to give the slot back.
struct CachedBufSlot {
    instance: u64,
    slot: usize,
    registry: Weak<dyn SlotTryFree>,
}

thread_local! {
    /// Per-thread cache of instance → buffer-slot assignments, mirror
    /// of [`HOMES`]. Evicting an entry returns its (empty) slot to the
    /// registry's free list via [`SlotTryFree`], so a thread cycling
    /// through many live instances no longer strands one dead slot per
    /// instance for `flush_all` to scan forever; a slot with staged
    /// elements stays owned by the queue's [`SlotVec`], where
    /// `flush()`/`close()`/empty-reporting recover it and the evicted
    /// thread rediscovers it by owner tag on its next operation.
    static BUF_SLOTS: RefCell<Vec<CachedBufSlot>> = const { RefCell::new(Vec::new()) };
}

/// Acquire a buffer-slot lock without OS-blocking: the critical sections
/// include shard operations with det yield points, so under a det
/// schedule the holder may be a parked vthread that can only run again
/// if this thread yields — a blocking `lock()` would deadlock the
/// scheduler's token gate. Outside det the loop is a plain spin;
/// contention is rare (a thread meets a foreign slot only through
/// `flush_all` or slot reaping). A poisoned slot (injected panic
/// mid-flush) is taken over rather than propagated: the buffer's
/// contents are still valid, only the in-flight element was lost.
fn lock_buf<V>(m: &Mutex<OpBuf<V>>) -> std::sync::MutexGuard<'_, OpBuf<V>> {
    loop {
        match m.try_lock() {
            Ok(g) => return g,
            Err(std::sync::TryLockError::Poisoned(p)) => return p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                det::det_point!("shard.buf-wait");
                std::hint::spin_loop();
            }
        }
    }
}

/// How many successful extractions a shard serves between two runs of
/// the batch controller. Small enough to track phase changes within a
/// few thousand operations, large enough that the stats snapshot cost
/// (summing striped counters) is noise.
const ADAPT_INTERVAL: u64 = 128;

/// Decide the next effective batch from one observation window.
///
/// `d_extracts` / `d_contention` are the deltas of successful
/// extractions and of root-contention events (`trylock_fails +
/// refill_races`) over the window. Returns `Some(new_batch)` to move,
/// `None` to hold.
///
/// Policy (multiplicative increase, 1/4 decrease):
/// * ≥ 1 contention event per 8 extractions → the root is a bottleneck;
///   double the batch (§4.2: root-access ratio ≈ `1/(batch+1)`, so
///   doubling roughly halves root traffic).
/// * zero contention events → nobody is waiting on the root; decay the
///   batch by a quarter to tighten the relaxation window.
/// * anything in between → hold (hysteresis band so the batch does not
///   oscillate on moderate load).
pub(crate) fn adapt_decision(cur: usize, d_extracts: u64, d_contention: u64) -> Option<usize> {
    if d_extracts == 0 {
        return None;
    }
    if d_contention * 8 >= d_extracts {
        Some(cur.saturating_mul(2).max(cur + 1))
    } else if d_contention == 0 {
        Some(cur - (cur / 4).max(1).min(cur))
    } else {
        None
    }
}

/// Per-shard controller state. Plain relaxed atomics: the controller is
/// a heuristic and tolerates racy windows (two threads adapting the same
/// shard concurrently just run the same decision twice).
#[derive(Default)]
struct ShardAdapt {
    /// Successful extractions routed through this wrapper.
    ops: AtomicU64,
    /// `extracts` counter at the end of the previous window.
    last_extracts: AtomicU64,
    /// `trylock_fails + refill_races` at the end of the previous window.
    last_contention: AtomicU64,
}

/// A fixed set of ZMSQ shards with thread-affine insertion, two-distinct-
/// choice extraction, bounded work-stealing, and (optionally) an adaptive
/// per-shard refill batch. See the module docs.
pub struct ShardedZmsq<V, S = ListSet<V>, L = TatasLock>
where
    V: Send,
    S: NodeSet<V>,
    L: RawTryLock,
{
    shards: Box<[Zmsq<V, S, L>]>,
    /// Process-unique id keying the per-thread home-shard cache.
    instance_id: u64,
    /// This instance's round-robin registration counter.
    next_home: AtomicUsize,
    /// Batch-controller state, one per shard; `None` when the config is
    /// not adaptive (`batch_min == batch_max`).
    adapt: Option<Box<[ShardAdapt]>>,
    /// Controller moves, for observability (`zmsq.batch.widens/narrows`).
    widens: AtomicU64,
    narrows: AtomicU64,
    /// Stickiness / operation-buffer tuning (all-zero = legacy paths).
    tuning: ShardedConfig,
    /// Whether the insert / extract fast paths are armed (tuned AND
    /// unbounded — buffers are invisible to capacity accounting).
    fast_ins: bool,
    fast_del: bool,
    /// One operation buffer per registered `(thread, instance)` pair.
    /// `Arc` so evicted cache entries can hold a [`Weak`] back-reference
    /// for eviction-time slot freeing without keeping a dropped
    /// instance's registry alive.
    bufs: Arc<SlotVec<BufSlot<V>>>,
    /// Elements currently staged in insert / delete buffers (folded into
    /// `len_hint` and exported as `buf.pending_*` gauges).
    pending_ins: AtomicUsize,
    pending_del: AtomicUsize,
    /// Fast-path activity counters (`buf.insert_flushes`,
    /// `buf.delete_refills`).
    insert_flushes: AtomicU64,
    delete_refills: AtomicU64,
}

impl<V: Send + 'static, S: NodeSet<V>, L: RawTryLock> ShardedZmsq<V, S, L> {
    /// Create `shards` queues (rounded up to a power of two), each with
    /// the given configuration. An adaptive configuration
    /// ([`ZmsqConfig::adaptive_batch`]) arms the per-shard batch
    /// controller.
    pub fn new(shards: usize, cfg: ZmsqConfig) -> Self {
        Self::with_tuning(shards, cfg, ShardedConfig::default())
    }

    /// [`new`](Self::new) plus a [`ShardedConfig`] arming stickiness and
    /// per-thread operation buffers. With an all-default tuning this is
    /// exactly `new`.
    pub fn with_tuning(shards: usize, cfg: ZmsqConfig, tuning: ShardedConfig) -> Self {
        let n = shards.max(1).next_power_of_two();
        // A queue-level capacity bound is split evenly across shards
        // (rounded up, so the composed bound is `>=` the requested one
        // by at most `n - 1`). The fallible inserts spill across shards,
        // so skewed producers still reach the full budget.
        let mut cfg = cfg;
        if let Some(cap) = cfg.capacity {
            cfg = cfg.capacity(cap.div_ceil(n));
        }
        let shards: Box<[Zmsq<V, S, L>]> = (0..n).map(|_| Zmsq::with_config(cfg.clone())).collect();
        // Read adaptivity off the *normalized* config the shards actually
        // run with (normalization may have collapsed an incoherent range).
        let adaptive = shards[0].config().is_adaptive();
        // Buffered elements are invisible to capacity/occupancy
        // accounting and to shed policies, so a bounded queue keeps the
        // legacy admission paths regardless of tuning.
        let unbounded = shards[0].capacity().is_none();
        let fast_ins = unbounded && (tuning.stickiness >= 1 || tuning.insert_buffer > 1);
        // *Any* tuning arms the extract side: even insert-only buffering
        // stages elements the direct sweep cannot see, so extract_max /
        // extract_batch must run the flush-before-report loop for `None`
        // to keep meaning "no element is hiding in a buffer".
        let fast_del = unbounded && tuning.is_tuned();
        Self {
            shards,
            instance_id: INSTANCE_IDS.fetch_add(1, Ordering::Relaxed),
            next_home: AtomicUsize::new(0),
            adapt: adaptive.then(|| (0..n).map(|_| ShardAdapt::default()).collect()),
            widens: AtomicU64::new(0),
            narrows: AtomicU64::new(0),
            tuning,
            fast_ins,
            fast_del,
            bufs: Arc::new(SlotVec::new()),
            pending_ins: AtomicUsize::new(0),
            pending_del: AtomicUsize::new(0),
            insert_flushes: AtomicU64::new(0),
            delete_refills: AtomicU64::new(0),
        }
    }

    /// The stickiness / buffer tuning this instance runs with.
    pub fn tuning(&self) -> ShardedConfig {
        self.tuning
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the adaptive batch controller is armed.
    pub fn is_adaptive(&self) -> bool {
        self.adapt.is_some()
    }

    /// The calling thread's home shard for **this instance**: stable per
    /// `(thread, instance)`, assigned round-robin from the instance's own
    /// counter, so each instance's first `k` registrants cover `k`
    /// distinct shards regardless of what other instances assigned.
    pub fn home_shard(&self) -> usize {
        let mask = self.shards.len() - 1;
        HOMES.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(&(_, home)) = cache.iter().find(|&&(id, _)| id == self.instance_id) {
                // The cached value was masked at registration; re-mask in
                // case of (impossible today) shard-count drift.
                return home & mask;
            }
            let home = self.next_home.fetch_add(1, Ordering::Relaxed) & mask;
            if cache.len() >= HOME_CACHE_CAP {
                cache.remove(0); // evict oldest; re-registration is harmless
            }
            cache.push((self.instance_id, home));
            home
        })
    }

    fn random_shard(&self) -> usize {
        crate::rng::next_index(self.shards.len())
    }

    /// Two *distinct* random shards. Caller guarantees `shard_count() > 1`.
    fn pick_two(&self) -> (usize, usize) {
        let n = self.shards.len();
        debug_assert!(n > 1);
        let a = crate::rng::next_index(n);
        // An offset in 1..n keeps the pair distinct by construction (no
        // redraw loop) and uniform over ordered distinct pairs.
        let b = (a + 1 + crate::rng::next_index(n - 1)) & (n - 1);
        (a, b)
    }

    /// Order a distinct pair into (winner, loser) by optimistic root max,
    /// breaking equal hints randomly so identical shards wear evenly.
    fn order_by_hint(&self, a: usize, b: usize) -> (usize, usize) {
        use std::cmp::Ordering::*;
        // `None < Some(_)`: a shard whose tree looks empty loses the
        // pick, but remains the steal target — its pool may still be full.
        match self.shards[a]
            .peek_max_hint()
            .cmp(&self.shards[b].peek_max_hint())
        {
            Greater => (a, b),
            Less => (b, a),
            Equal => {
                if crate::rng::next_u64() & 1 == 0 {
                    (a, b)
                } else {
                    (b, a)
                }
            }
        }
    }

    /// Record `count` successful extractions against shard `s` and run
    /// the batch controller when the window boundary is crossed.
    fn note_extracts(&self, s: usize, count: u64) {
        let Some(adapt) = &self.adapt else { return };
        let st = &adapt[s];
        let prev = st.ops.fetch_add(count, Ordering::Relaxed);
        if prev / ADAPT_INTERVAL == (prev + count) / ADAPT_INTERVAL {
            return; // window not finished yet
        }
        let shard = &self.shards[s];
        let snap = shard.stats();
        let contention = snap.trylock_fails + snap.refill_races;
        // Saturating: two threads can cross window boundaries at once,
        // and the loser of the `swap` race would otherwise compute a
        // negative delta. The clamped-to-zero window is simply skipped
        // by the controller (no signal, no move).
        let d_ex = snap
            .extracts
            .saturating_sub(st.last_extracts.swap(snap.extracts, Ordering::Relaxed));
        let d_c = contention.saturating_sub(st.last_contention.swap(contention, Ordering::Relaxed));
        let cur = shard.current_batch();
        if let Some(next) = adapt_decision(cur, d_ex, d_c) {
            let applied = shard.set_current_batch(next);
            if applied > cur {
                self.widens.fetch_add(1, Ordering::Relaxed);
            } else if applied < cur {
                self.narrows.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The calling thread's operation-buffer slot for this instance,
    /// registering one on first touch. Mirrors [`home_shard`]'s cache
    /// discipline — with two additions. On a cache miss the thread
    /// first looks for a slot it already owns in this instance (its
    /// cache entry may merely have been evicted), then claims a freed
    /// slot off the registry's free list, and only then grows the
    /// registry. On *eviction* the outgoing entry's slot is returned to
    /// its registry's free list if its buffers are empty
    /// ([`SlotTryFree`]), so cycling through more than
    /// [`HOME_CACHE_CAP`] live instances neither leaks a dead slot per
    /// instance (the pre-reclamation behaviour, which left `flush_all`
    /// scanning them forever) nor re-registers fresh ones per return.
    ///
    /// The returned index is a *hint*: the close-time reaper can free
    /// the slot concurrently, so lock-holding users go through
    /// [`my_buf`](Self::my_buf), which re-validates ownership under the
    /// slot lock.
    ///
    /// [`home_shard`]: Self::home_shard
    fn buf_slot(&self) -> usize {
        let me = zmsq_sync::thread_tag();
        BUF_SLOTS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(pos) = cache.iter().position(|e| e.instance == self.instance_id) {
                let slot = cache[pos].slot;
                if self.bufs.get(slot).owner.load(Ordering::Acquire) == me {
                    return slot;
                }
                // Reaped out from under us (close-time): the entry is
                // stale; drop it and re-register.
                cache.remove(pos);
            }
            let slot = (0..self.bufs.len())
                .find(|&i| self.bufs.get(i).owner.load(Ordering::Acquire) == me)
                .or_else(|| {
                    self.bufs.try_acquire().inspect(|&i| {
                        // The free-list pop is an exclusive claim; the
                        // slot was parked at FREE_SLOT.
                        self.bufs.get(i).owner.store(me, Ordering::Release);
                    })
                })
                .unwrap_or_else(|| {
                    self.bufs.push(BufSlot {
                        owner: AtomicU64::new(me),
                        buf: Mutex::new(OpBuf::default()),
                    })
                });
            if cache.len() >= HOME_CACHE_CAP {
                // Evict the oldest entry, returning its slot if empty.
                let old = cache.remove(0);
                if let Some(reg) = old.registry.upgrade() {
                    reg.try_free(old.slot, me);
                }
            }
            cache.push(CachedBufSlot {
                instance: self.instance_id,
                slot,
                registry: Arc::downgrade(&self.bufs) as Weak<dyn SlotTryFree>,
            });
            slot
        })
    }

    /// Lock the calling thread's buffer slot, re-validating ownership
    /// under the lock: the close-time reaper frees slots only while
    /// holding the slot mutex, so an `owner == me` check made *after*
    /// locking is authoritative. On a lost race (slot reaped, possibly
    /// already re-owned by another thread) the stale cache entry is
    /// dropped and registration retried.
    fn my_buf(&self) -> std::sync::MutexGuard<'_, OpBuf<V>> {
        let me = zmsq_sync::thread_tag();
        loop {
            let slot = self.bufs.get(self.buf_slot());
            let b = lock_buf(&slot.buf);
            if slot.owner.load(Ordering::Acquire) == me {
                return b;
            }
            drop(b);
            BUF_SLOTS.with(|c| c.borrow_mut().retain(|e| e.instance != self.instance_id));
        }
    }

    /// Publish a buffer's staged inserts to its sticky shard. No-op when
    /// empty. Called with the slot lock held (`b` is behind it).
    fn flush_ins(&self, b: &mut OpBuf<V>) {
        if b.ins.is_empty() {
            return;
        }
        fault::fail_point!("shard.flush-delay");
        let n = b.ins.len();
        self.shards[b.ins_shard & (self.shards.len() - 1)].insert_batch(&mut b.ins);
        // Decrement only after the shard publish: a `len_hint` racing
        // the flush then transiently *over*counts (both sides visible)
        // instead of reporting 0 on a non-empty queue.
        self.pending_ins.fetch_sub(n, Ordering::Relaxed);
        self.insert_flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Return a buffer's prefetched-but-unclaimed extractions to the
    /// shard they came from, making them claimable by other threads.
    fn unprefetch_del(&self, b: &mut OpBuf<V>) {
        if b.del.is_empty() {
            return;
        }
        fault::fail_point!("shard.flush-delay");
        let n = b.del.len();
        self.shards[b.del_shard & (self.shards.len() - 1)].insert_batch(&mut b.del);
        // After the publish, for the same reason as `flush_ins`.
        self.pending_del.fetch_sub(n, Ordering::Relaxed);
        // The sticky run is stale once its prefetch was stolen back.
        b.del_left = 0;
    }

    /// Publish every thread's staged operations: staged inserts go to
    /// their sticky shards, prefetched extractions return to theirs.
    /// Returns how many elements moved. Locks one slot at a time (never
    /// two), so concurrent flushers cannot deadlock; the caller must not
    /// hold a slot lock.
    fn flush_all(&self) -> usize {
        let mut moved = 0;
        for slot in self.bufs.iter() {
            let mut b = lock_buf(&slot.buf);
            moved += b.ins.len() + b.del.len();
            self.flush_ins(&mut b);
            self.unprefetch_del(&mut b);
        }
        moved
    }

    /// Flush staged operations before `close()` tears the shards down.
    /// The `shard.skip-close-flush` failpoint deletes exactly this step,
    /// so the det mutation check can prove the close-flush is what keeps
    /// buffered elements from being stranded.
    ///
    /// After the flush every buffer is (momentarily) empty, so the slots
    /// themselves are reaped onto the free list — a closing instance in
    /// a long-lived process hands its storage to whatever threads touch
    /// it next instead of stranding one dead slot per thread. Owners
    /// with live cache entries re-validate under the slot lock
    /// ([`my_buf`](Self::my_buf)) and re-register, so reaping out from
    /// under them is safe.
    fn flush_for_close(&self) {
        fault::fail_point!("shard.skip-close-flush", return);
        self.flush_all();
        self.reap_empty_slots();
    }

    /// Return every empty, owned buffer slot to the free list. Cold
    /// path: called at close, not from the hot flush-before-report loop
    /// (reaping there would thrash active threads' slots, forcing a
    /// re-registration per emptiness check).
    fn reap_empty_slots(&self) -> usize {
        let mut freed = 0;
        for i in 0..self.bufs.len() {
            let owner = self.bufs.get(i).owner.load(Ordering::Acquire);
            if owner != FREE_SLOT && self.bufs.try_free(i, owner) {
                freed += 1;
            }
        }
        freed
    }

    /// Sticky insert target for a fresh run: random under stickiness
    /// (the MultiQueue policy — spreads each thread's runs over all
    /// shards), home-affine when only buffering is armed.
    fn pick_insert_shard(&self) -> usize {
        if self.tuning.stickiness >= 1 && self.shards.len() > 1 {
            self.random_shard()
        } else {
            self.home_shard()
        }
    }

    /// Sticky extract source for a fresh run: the two-choice winner by
    /// root hint (degenerates to shard 0 on a single shard).
    fn pick_extract_shard(&self) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let _pick = obs::span!(obs::SpanPhase::ShardPick);
        let (a, b) = self.pick_two();
        self.order_by_hint(a, b).0
    }

    /// Fast-path insert: sticky shard choice plus (optionally) staging
    /// in the thread-local insert buffer. Flush triggers: overflow
    /// (buffer reached its depth) and re-sample (the sticky run ended,
    /// so pending elements are published to the shard they were staged
    /// for before the target moves).
    fn fast_insert(&self, prio: u64, value: V) {
        let mut b = self.my_buf();
        if b.ins_left == 0 {
            self.flush_ins(&mut b); // flush-on-resample
            b.ins_shard = self.pick_insert_shard();
            // Stickiness off = home-affine: the target never moves, so
            // the run never expires (overflow still bounds the buffer).
            b.ins_left = match self.tuning.stickiness {
                0 => usize::MAX,
                c => c,
            };
        }
        b.ins_left -= 1;
        if self.tuning.insert_buffer > 1 {
            b.ins.push((prio, value));
            self.pending_ins.fetch_add(1, Ordering::Relaxed);
            if b.ins.len() >= self.tuning.insert_buffer {
                self.flush_ins(&mut b); // flush-on-overflow
            }
        } else {
            let s = b.ins_shard;
            drop(b); // don't hold the slot lock across the shard insert
            self.shards[s].insert(prio, value);
        }
    }

    /// Fast-path extract: serve from the thread-local delete buffer,
    /// refilling it from the sticky shard (two-choice winner, re-picked
    /// every `stickiness` refills). When the sticky shard runs dry the
    /// legacy steal/sweep runs, and before concluding empty every
    /// thread's buffers are flushed and the sweep retried — an element
    /// staged in *any* buffer keeps `None` off the table.
    fn fast_extract(&self) -> Option<(u64, V)> {
        let mut b = self.my_buf();
        if let Some(got) = b.del.pop() {
            self.pending_del.fetch_sub(1, Ordering::Relaxed);
            return Some(got);
        }
        if b.del_left == 0 {
            b.del_shard = self.pick_extract_shard();
            b.del_left = self.tuning.stickiness.max(1);
        }
        b.del_left -= 1;
        let s = b.del_shard;
        let want = self.tuning.delete_buffer.max(1);
        let mut got = self.shards[s].extract_batch(&mut b.del, want);
        if got > 0 {
            self.note_extracts(s, got as u64);
        } else {
            // Sticky shard dry: drop the run and refill through the
            // legacy two-choice/steal/sweep (which does its own
            // controller bookkeeping).
            b.del_left = 0;
            got = self.extract_batch_direct(&mut b.del, want);
        }
        if got > 0 {
            self.delete_refills.fetch_add(1, Ordering::Relaxed);
            if got > 1 {
                b.del.sort_unstable_by_key(|&(p, _)| p);
            }
            self.pending_del.fetch_add(got - 1, Ordering::Relaxed);
            return Some(b.del.pop().expect("refill returned > 0"));
        }
        // Every shard individually reported empty; elements may still be
        // hiding in (other threads') buffers — flush-before-report.
        drop(b);
        loop {
            let moved = self.flush_all();
            if let Some(got) = self.extract_direct() {
                return Some(got);
            }
            if moved == 0 {
                return None;
            }
        }
    }

    /// Insert into the calling thread's home shard (locality; on a real
    /// NUMA machine, pin threads so the home shard's memory is local) —
    /// or, with a [`ShardedConfig`], into the sticky shard via the
    /// thread-local insert buffer.
    ///
    /// On a capacity-bounded queue the insert first tries every shard
    /// fallibly (home first — per-shard budgets are `capacity / shards`,
    /// and a skewed producer set must still reach the whole budget)
    /// before falling back to the home shard's infallible insert, which
    /// applies the configured [`ShedPolicy`](crate::ShedPolicy) there.
    pub fn insert(&self, prio: u64, value: V) {
        if self.fast_ins {
            return self.fast_insert(prio, value);
        }
        self.insert_direct(prio, value);
    }

    fn insert_direct(&self, prio: u64, value: V) {
        let home = self.home_shard();
        if self.shards[home].capacity().is_none() {
            self.shards[home].insert(prio, value);
            return;
        }
        match self.try_insert_spill(home, prio, value) {
            Ok(()) => {}
            Err(e) => {
                // Full everywhere (or closed): let the home shard's
                // policy decide — block, drop, or evict.
                self.shards[home].insert(prio, e.into_value());
            }
        }
    }

    /// Fallible insert: home shard first, spilling to the other shards
    /// when the home budget is exhausted. Returns
    /// [`InsertError::Full`] only after *every* shard rejected.
    #[must_use = "the rejected element is inside the error; dropping it loses work"]
    pub fn try_insert(&self, prio: u64, value: V) -> Result<(), InsertError<V>> {
        self.try_insert_spill(self.home_shard(), prio, value)
    }

    fn try_insert_spill(&self, home: usize, prio: u64, value: V) -> Result<(), InsertError<V>> {
        let n = self.shards.len();
        let mask = n - 1;
        let mut value = value;
        for i in 0..n {
            value = match self.shards[(home + i) & mask].try_insert(prio, value) {
                Ok(()) => return Ok(()),
                Err(InsertError::Full(v)) => v,
                Err(e) => return Err(e),
            };
        }
        Err(InsertError::Full(value))
    }

    /// [`try_insert`](Self::try_insert) that, after a full spill pass,
    /// parks on the *home* shard (under
    /// [`ShedPolicy::Block`](crate::ShedPolicy::Block)) up to `timeout`.
    #[must_use = "the rejected element is inside the error; dropping it loses work"]
    pub fn insert_timeout(
        &self,
        prio: u64,
        value: V,
        timeout: std::time::Duration,
    ) -> Result<(), InsertError<V>> {
        let home = self.home_shard();
        match self.try_insert_spill(home, prio, value) {
            Ok(()) => Ok(()),
            Err(InsertError::Full(v)) => self.shards[home].insert_timeout(prio, v, timeout),
            Err(e) => Err(e),
        }
    }

    /// Bulk insertion: scatter `items` round-robin across the shards,
    /// starting at the home shard, then bulk-insert each shard's share.
    /// Round-robin (rather than contiguous chunks of the sorted input)
    /// keeps every shard's priority distribution balanced, which is what
    /// the two-choice extraction side assumes.
    pub fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        let n = self.shards.len();
        if n == 1 || items.len() <= 1 {
            self.shards[self.home_shard()].insert_batch(items);
            return;
        }
        let mask = n - 1;
        let home = self.home_shard();
        let mut per: Vec<Vec<(u64, V)>> = (0..n)
            .map(|_| Vec::with_capacity(items.len() / n + 1))
            .collect();
        for (i, item) in items.drain(..).enumerate() {
            per[(home + i) & mask].push(item);
        }
        for (s, mut chunk) in per.into_iter().enumerate() {
            if !chunk.is_empty() {
                self.shards[s].insert_batch(&mut chunk);
            }
        }
    }

    /// Extract from the better of two distinct random shards (by
    /// optimistic root max), stealing once from the loser if the winner's
    /// hint was stale, and sweeping every shard before concluding empty —
    /// or, with a [`ShardedConfig`], from the thread-local delete buffer
    /// refilled from the sticky shard.
    ///
    /// The emptiness guarantee survives tuning: before returning `None`
    /// every thread's staged operations are flushed back to the shards
    /// and the sweep retried, so `None` still means every shard
    /// individually reported empty *with no element hiding in a buffer*.
    pub fn extract_max(&self) -> Option<(u64, V)> {
        if self.fast_del {
            return self.fast_extract();
        }
        self.extract_direct()
    }

    fn extract_direct(&self) -> Option<(u64, V)> {
        if self.shards.len() == 1 {
            let got = self.shards[0].extract_max();
            if got.is_some() {
                self.note_extracts(0, 1);
            }
            return got;
        }
        let (winner, loser) = {
            let _pick = obs::span!(obs::SpanPhase::ShardPick);
            let (a, b) = self.pick_two();
            self.order_by_hint(a, b)
        };
        if let Some(got) = self.shards[winner].extract_max() {
            self.note_extracts(winner, 1);
            return Some(got);
        }
        // The winner's hint was stale (drained tree, or both hints None
        // while a pool still holds elements). Steal from the loser —
        // bounded to one attempt — before the O(shards) sweep.
        if let Some(got) = self.shards[loser].extract_max() {
            self.note_extracts(loser, 1);
            return Some(got);
        }
        // Sweep fallback: preserves no-spurious-failure per shard.
        let start = self.random_shard();
        for i in 0..self.shards.len() {
            let s = (start + i) & (self.shards.len() - 1);
            if let Some(got) = self.shards[s].extract_max() {
                self.note_extracts(s, 1);
                return Some(got);
            }
        }
        None
    }

    /// Batched extraction: gather up to `n` elements, routing each round
    /// through the same two-choice / steal / sweep policy as
    /// [`extract_max`](Self::extract_max) and draining the chosen shard's
    /// pool with single-`fetch_sub` batched claims. With a
    /// [`ShardedConfig`], the calling thread's delete buffer is served
    /// first and buffers are flushed before an empty report, mirroring
    /// `extract_max`.
    pub fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        if !self.fast_del {
            return self.extract_batch_direct(out, n);
        }
        let mut got = 0;
        {
            let mut b = self.my_buf();
            while got < n {
                match b.del.pop() {
                    Some(e) => {
                        out.push(e);
                        got += 1;
                    }
                    None => break,
                }
            }
            if got > 0 {
                self.pending_del.fetch_sub(got, Ordering::Relaxed);
            }
        }
        if got < n {
            got += self.extract_batch_direct(out, n - got);
        }
        if got == 0 && n > 0 {
            // Flush-before-report, as in `fast_extract`.
            loop {
                let moved = self.flush_all();
                got = self.extract_batch_direct(out, n);
                if got > 0 || moved == 0 {
                    break;
                }
            }
        }
        got
    }

    fn extract_batch_direct(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        if self.shards.len() == 1 {
            let got = self.shards[0].extract_batch(out, n);
            if got > 0 {
                self.note_extracts(0, got as u64);
            }
            return got;
        }
        let mut got = 0;
        while got < n {
            let (winner, loser) = {
                let _pick = obs::span!(obs::SpanPhase::ShardPick);
                let (a, b) = self.pick_two();
                self.order_by_hint(a, b)
            };
            // Cap each round at the winner's effective batch: draining a
            // whole shard in one round would hand out its *low* elements
            // while a sibling shard still holds high ones, inflating the
            // composed rank error far past the per-shard window.
            let cap = self.shards[winner].current_batch().max(1);
            let want = (n - got).min(cap);
            let mut round = self.shards[winner].extract_batch(out, want);
            if round > 0 {
                self.note_extracts(winner, round as u64);
            } else {
                round = self.shards[loser].extract_batch(out, want);
                if round > 0 {
                    self.note_extracts(loser, round as u64);
                }
            }
            if round == 0 {
                // Sweep: take whatever every shard can still supply.
                let start = self.random_shard();
                for i in 0..self.shards.len() {
                    let s = (start + i) & (self.shards.len() - 1);
                    let c = self.shards[s].extract_batch(out, n - got - round);
                    if c > 0 {
                        self.note_extracts(s, c as u64);
                        round += c;
                    }
                    if got + round >= n {
                        break;
                    }
                }
                if round == 0 {
                    break; // every shard individually reported empty
                }
            }
            got += round;
        }
        got
    }

    /// Sum of shard size hints plus elements staged in operation
    /// buffers (staged inserts are not yet in any shard; prefetched
    /// deletions are already out of theirs but not yet handed to a
    /// caller — both are still *in the queue*).
    pub fn len_hint(&self) -> usize {
        self.shards.iter().map(|s| s.len_hint()).sum::<usize>()
            + self.pending_ins.load(Ordering::Relaxed)
            + self.pending_del.load(Ordering::Relaxed)
    }

    /// Publish every thread's staged operations (see
    /// [`ConcurrentPriorityQueue::flush`](pq_traits::ConcurrentPriorityQueue::flush)):
    /// staged inserts reach their sticky shards, prefetched deletions
    /// return to theirs. The escape hatch for checkpoints and for
    /// consumers that need cross-thread visibility *now* rather than at
    /// the next flush trigger.
    pub fn flush(&self) {
        self.flush_all();
    }

    /// Access a shard directly (diagnostics, per-shard stats).
    pub fn shard(&self, i: usize) -> &Zmsq<V, S, L> {
        &self.shards[i]
    }

    /// Mean effective refill batch across shards (equals the configured
    /// `batch` everywhere when the controller is off).
    pub fn mean_batch(&self) -> usize {
        self.shards.iter().map(|s| s.current_batch()).sum::<usize>() / self.shards.len()
    }

    /// Total capacity across shards, if bounded. May exceed the value
    /// passed to [`ZmsqConfig::capacity`] by up to `shards - 1`
    /// (per-shard budgets round up).
    pub fn capacity(&self) -> Option<usize> {
        self.shards[0].capacity().map(|c| c * self.shards.len())
    }

    /// Live elements under capacity accounting, summed over shards.
    pub fn occupancy(&self) -> usize {
        self.shards.iter().map(|s| s.occupancy()).sum()
    }

    /// Producers currently parked waiting for room, summed over shards.
    pub fn producer_waiters(&self) -> usize {
        self.shards.iter().map(|s| s.producer_waiters()).sum()
    }

    /// Close every shard: wakes all blocked consumers and producers
    /// permanently (see [`Zmsq::close`]). Staged operations are flushed
    /// first so no element is stranded in a thread-local buffer after
    /// close — drain loops observe everything that was inserted.
    ///
    /// An insert racing `close()` may still be staged after the flush;
    /// it is published at that thread's next flush trigger or by an
    /// explicit [`flush`](Self::flush), the same window a linearizable
    /// queue gives an insert that linearizes after close.
    pub fn close(&self) {
        self.flush_for_close();
        for s in &self.shards {
            s.close();
        }
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.shards.iter().any(|s| s.is_closed())
    }
}

impl<V: Send + 'static, S: NodeSet<V> + 'static, L: RawTryLock + 'static>
    pq_traits::ConcurrentPriorityQueue<V> for ShardedZmsq<V, S, L>
{
    fn insert(&self, prio: u64, value: V) {
        ShardedZmsq::insert(self, prio, value)
    }
    fn extract_max(&self) -> Option<(u64, V)> {
        ShardedZmsq::extract_max(self)
    }
    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        ShardedZmsq::insert_batch(self, items)
    }
    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        ShardedZmsq::extract_batch(self, out, n)
    }
    fn try_insert(&self, prio: u64, value: V) -> Result<(), InsertError<V>> {
        ShardedZmsq::try_insert(self, prio, value)
    }
    fn insert_timeout(
        &self,
        prio: u64,
        value: V,
        timeout: std::time::Duration,
    ) -> Result<(), InsertError<V>> {
        ShardedZmsq::insert_timeout(self, prio, value, timeout)
    }
    fn name(&self) -> String {
        let mut n = format!("zmsq-sharded-{}", self.shards.len());
        if self.is_adaptive() {
            n.push_str("-adaptive");
        }
        if self.tuning.is_tuned() {
            n.push_str(&format!(
                "-c{}-i{}-d{}",
                self.tuning.stickiness, self.tuning.insert_buffer, self.tuning.delete_buffer
            ));
        }
        n
    }
    fn len_hint(&self) -> usize {
        self.len_hint()
    }
    fn flush(&self) {
        ShardedZmsq::flush(self)
    }
    fn metrics(&self) -> Option<obs::Snapshot> {
        // Fold the per-shard operation counters into one queue-level view,
        // then attach the per-shard gauges the CI smoke asserts on.
        let mut total = StatsSnapshot::default();
        for sh in &self.shards {
            total.absorb(&sh.stats());
        }
        let mut snap = total.to_obs();
        snap.push_gauge("zmsq.shards", self.shards.len() as i64);
        snap.push_gauge("zmsq.batch.current", self.mean_batch() as i64);
        snap.push_counter("zmsq.batch.widens", self.widens.load(Ordering::Relaxed));
        snap.push_counter("zmsq.batch.narrows", self.narrows.load(Ordering::Relaxed));
        if self.fast_ins || self.fast_del {
            snap.push_gauge("buf.threads", self.bufs.len() as i64);
            snap.push_gauge("buf.free_slots", self.bufs.free_count() as i64);
            snap.push_gauge(
                "buf.pending_inserts",
                self.pending_ins.load(Ordering::Relaxed) as i64,
            );
            snap.push_gauge(
                "buf.pending_deletes",
                self.pending_del.load(Ordering::Relaxed) as i64,
            );
            snap.push_counter(
                "buf.insert_flushes",
                self.insert_flushes.load(Ordering::Relaxed),
            );
            snap.push_counter(
                "buf.delete_refills",
                self.delete_refills.load(Ordering::Relaxed),
            );
        }
        if let Some(cap) = self.capacity() {
            snap.push_gauge("queue.pressure.capacity", cap as i64);
            snap.push_gauge("queue.pressure.occupancy", self.occupancy() as i64);
            snap.push_gauge(
                "queue.pressure.producer_waiters",
                self.producer_waiters() as i64,
            );
        }
        for (i, sh) in self.shards.iter().enumerate() {
            let st = sh.stats();
            snap.push_gauge(&format!("zmsq.shard.{i}.batch"), sh.current_batch() as i64);
            snap.push_gauge(&format!("zmsq.shard.{i}.len_hint"), sh.len_hint() as i64);
            snap.push_counter(&format!("zmsq.shard.{i}.inserts"), st.inserts);
            snap.push_counter(&format!("zmsq.shard.{i}.extracts"), st.extracts);
        }
        // Fold per-shard quality telemetry into one queue-level view
        // (same `quality.*` names as a single Zmsq, so dashboards and
        // the perf gate read both uniformly). Per-shard ranks are
        // measured against the shard's own population; the composed
        // cross-shard rank error additionally carries the two-choice
        // tail, so this fold is a *lower bound* on global rank error.
        if self.shards[0].rank_estimator().is_some() {
            let mut c = [0u64; 9];
            let mut wasted = 0u64;
            let (mut live, mut slots) = (0usize, 0usize);
            let mut est_rank = obs::HistSnapshot::default();
            let mut staleness = obs::HistSnapshot::default();
            for sh in &self.shards {
                let est = sh.rank_estimator().expect("uniform shard config");
                let (si, st, dr, se, ma, mi, sr, rm, rs) = est.counters();
                for (dst, v) in c.iter_mut().zip([si, st, dr, se, ma, mi, sr, rm, rs]) {
                    *dst += v;
                }
                wasted += est.wasted();
                live += est.live();
                slots += est.slots();
                est_rank.absorb(&est.est_rank_hist().snapshot());
                staleness.absorb(&est.staleness_hist().snapshot());
            }
            snap.push_counter("quality.sampled_inserts", c[0]);
            snap.push_counter("quality.sampled_extracts", c[3]);
            snap.push_counter("quality.matched", c[4]);
            snap.push_counter("quality.missed", c[5]);
            snap.push_counter("quality.dropped", c[2]);
            snap.push_counter("quality.stored", c[1]);
            snap.push_counter("quality.removed", c[6]);
            snap.push_counter("quality.removed_matched", c[7]);
            snap.push_counter("quality.removed_missed", c[8]);
            snap.push_gauge("quality.reservoir.live", live as i64);
            snap.push_gauge("quality.reservoir.slots", slots as i64);
            snap.push_gauge(
                "quality.sample_shift",
                u64::from(
                    self.shards[0]
                        .rank_estimator()
                        .expect("checked")
                        .sample_shift(),
                ) as i64,
            );
            snap.push_ratio(
                "quality.wasted_ratio",
                if c[3] == 0 {
                    0.0
                } else {
                    wasted as f64 / c[3] as f64
                },
            );
            snap.push_hist_snapshot("quality.est_rank", est_rank);
            snap.push_hist_snapshot("quality.staleness_ns", staleness);
        }
        // Fold per-shard sojourn telemetry the same way: one queue-level
        // `queue.sojourn_ns` histogram (per-shard sojourns are true
        // end-to-end waits regardless of which shard served the key).
        if self.shards[0].sojourn_tracker().is_some() {
            let mut c = [0u64; 5];
            let (mut live, mut slots) = (0usize, 0usize);
            let mut sojourn = obs::HistSnapshot::default();
            for sh in &self.shards {
                let soj = sh.sojourn_tracker().expect("uniform shard config");
                let (st, ma, mi, dr, rm) = soj.counters();
                for (dst, v) in c.iter_mut().zip([st, ma, mi, dr, rm]) {
                    *dst += v;
                }
                live += soj.live();
                slots += soj.slots();
                sojourn.absorb(&soj.hist().snapshot());
            }
            snap.push_hist_snapshot("queue.sojourn_ns", sojourn);
            snap.push_counter("sojourn.stamped", c[0]);
            snap.push_counter("sojourn.matched", c[1]);
            snap.push_counter("sojourn.missed", c[2]);
            snap.push_counter("sojourn.dropped", c[3]);
            snap.push_counter("sojourn.removed", c[4]);
            snap.push_gauge(
                "sojourn.sample_shift",
                i64::from(
                    self.shards[0]
                        .sojourn_tracker()
                        .expect("checked")
                        .sample_shift(),
                ),
            );
            snap.push_gauge("sojourn.table.live", live as i64);
            snap.push_gauge("sojourn.table.slots", slots as i64);
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn shard_count_rounds_up() {
        let q: ShardedZmsq<u64> = ShardedZmsq::new(3, ZmsqConfig::default());
        assert_eq!(q.shard_count(), 4);
        let q1: ShardedZmsq<u64> = ShardedZmsq::new(1, ZmsqConfig::default());
        assert_eq!(q1.shard_count(), 1);
    }

    /// Regression (cross-instance home-shard leakage): each instance must
    /// assign from its *own* counter. Two differently-sized queues on one
    /// thread each see this thread as their first registrant, so both
    /// must assign home shard 0 — under the old shared-`static` scheme
    /// the second queue inherited an arbitrary cached counter value.
    #[test]
    fn home_shard_is_per_instance_on_one_thread() {
        // An isolated thread: the test harness's other threads must not
        // have registered with these instances first.
        std::thread::spawn(|| {
            let big: ShardedZmsq<u64> = ShardedZmsq::new(8, ZmsqConfig::default());
            let small: ShardedZmsq<u64> = ShardedZmsq::new(2, ZmsqConfig::default());
            assert_eq!(big.home_shard(), 0, "first registrant of `big`");
            assert_eq!(small.home_shard(), 0, "first registrant of `small`");
            // Stable on re-query, still independent per instance.
            assert_eq!(big.home_shard(), 0);
            assert_eq!(small.home_shard(), 0);
            // A third instance created *after* traffic on the others
            // still starts its round-robin from zero.
            let late: ShardedZmsq<u64> = ShardedZmsq::new(4, ZmsqConfig::default());
            assert_eq!(late.home_shard(), 0);
        })
        .join()
        .unwrap();
    }

    /// Regression (shard-0 hot-spotting): an instance's first `k`
    /// registering threads must cover `k` distinct shards.
    #[test]
    fn home_shards_cover_all_shards_round_robin() {
        let q: Arc<ShardedZmsq<u64>> = Arc::new(ShardedZmsq::new(4, ZmsqConfig::default()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || q.home_shard()));
        }
        let mut counts = [0usize; 4];
        for h in handles {
            counts[h.join().unwrap()] += 1;
        }
        assert_eq!(
            counts,
            [2, 2, 2, 2],
            "8 registrants over 4 shards must spread evenly"
        );
    }

    #[test]
    fn pick_two_always_distinct() {
        for shards in [2usize, 4, 8] {
            let q: ShardedZmsq<u64> = ShardedZmsq::new(shards, ZmsqConfig::default());
            for _ in 0..1_000 {
                let (a, b) = q.pick_two();
                assert_ne!(a, b, "two-choice degenerated to one choice");
                assert!(a < shards && b < shards);
            }
        }
    }

    #[test]
    fn equal_hints_tie_break_is_not_biased() {
        let q: ShardedZmsq<u64> = ShardedZmsq::new(2, ZmsqConfig::default());
        // Identical content => identical hints.
        q.shard(0).insert(7, 7);
        q.shard(1).insert(7, 7);
        let mut wins = [0usize; 2];
        for _ in 0..400 {
            let (w, _) = q.order_by_hint(0, 1);
            wins[w] += 1;
        }
        assert!(
            wins[0] > 50 && wins[1] > 50,
            "equal-hint tie always favours one side: {wins:?}"
        );
    }

    #[test]
    fn stale_hint_steals_from_loser() {
        // Shard 1 holds the only element, but shard 0's hint is higher
        // (stale or not — here: actually empty tree). Whichever shard the
        // two-choice nominates, the element must come out without a full
        // queue-level miss.
        let q: ShardedZmsq<u64> = ShardedZmsq::new(2, ZmsqConfig::default());
        for round in 0..100u64 {
            q.shard(round as usize & 1).insert(round, round);
            assert!(
                q.extract_max().is_some(),
                "steal/sweep missed the lone element"
            );
        }
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn roundtrip_conserves_across_shards() {
        let q: ShardedZmsq<u64> =
            ShardedZmsq::new(4, ZmsqConfig::default().batch(8).target_len(12));
        let got = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (q, got) = (&q, &got);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        q.insert((t * 5000 + i) % 7777, i);
                        if i % 2 == 0 && q.extract_max().is_some() {
                            got.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let mut rest = 0u64;
        while q.extract_max().is_some() {
            rest += 1;
        }
        assert_eq!(got.into_inner() + rest, 20_000);
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn returns_high_elements() {
        let q: ShardedZmsq<u64> =
            ShardedZmsq::new(2, ZmsqConfig::default().batch(16).target_len(24));
        for i in 0..20_000u64 {
            q.insert(i, i);
        }
        let mut sum = 0u64;
        for _ in 0..200 {
            sum += q.extract_max().unwrap().0;
        }
        assert!(sum / 200 > 17_000, "two-choice extraction rank too low");
    }

    #[test]
    fn sweep_finds_lone_element() {
        // A single element in one shard must always be found by the sweep,
        // regardless of which shards the two choices pick.
        let q: ShardedZmsq<u64> = ShardedZmsq::new(8, ZmsqConfig::default());
        for round in 0..200u64 {
            q.insert(round, round);
            assert!(q.extract_max().is_some(), "sweep missed the lone element");
        }
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn batched_ops_scatter_and_gather() {
        let q: ShardedZmsq<u64> =
            ShardedZmsq::new(4, ZmsqConfig::default().batch(8).target_len(12));
        let mut items: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i, i)).collect();
        q.insert_batch(&mut items);
        assert!(items.is_empty());
        // Scatter spread the load: no shard holds everything.
        for s in 0..4 {
            let n = q.shard(s).len_hint();
            assert!(n > 0 && n < 1_000, "shard {s} holds {n} of 1000");
        }
        let mut out = Vec::new();
        assert_eq!(q.extract_batch(&mut out, 300), 300);
        let mean: u64 = out.iter().map(|&(k, _)| k).sum::<u64>() / 300;
        assert!(mean > 600, "gathered batch rank too low: mean {mean}");
        assert_eq!(q.extract_batch(&mut out, 10_000), 700);
        assert_eq!(q.extract_batch(&mut out, 1), 0);
        let mut keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..1_000).collect::<Vec<_>>(), "elements lost");
    }

    #[test]
    fn bounded_sharded_spills_across_shard_budgets() {
        use crate::ShedPolicy;
        // Total capacity 16 over 4 shards = 4 per shard. A single thread
        // always targets its home shard, so reaching 16 admitted
        // elements requires the spill path.
        let q: ShardedZmsq<u64> = ShardedZmsq::new(
            4,
            ZmsqConfig::default()
                .capacity(16)
                .shed_policy(ShedPolicy::Reject),
        );
        assert_eq!(q.capacity(), Some(16));
        for i in 0..16u64 {
            q.try_insert(i, i).unwrap_or_else(|e| {
                panic!("spill must reach the full budget, rejected at {i}: {e:?}")
            });
        }
        assert_eq!(q.occupancy(), 16);
        let err = q.try_insert(99, 99).unwrap_err();
        assert!(matches!(err, InsertError::Full(99)));
        // The infallible insert applies Reject at the home shard: the
        // element is shed, never stranded half-admitted.
        q.insert(100, 100);
        assert_eq!(q.occupancy(), 16);
        let snap = pq_traits::ConcurrentPriorityQueue::metrics(&q).unwrap();
        assert_eq!(snap.gauge("queue.pressure.capacity"), Some(16));
        assert_eq!(snap.gauge("queue.pressure.occupancy"), Some(16));
        assert_eq!(snap.counter("queue.shed.rejected"), Some(1));
        let mut rest = 0;
        while q.extract_max().is_some() {
            rest += 1;
        }
        assert_eq!(rest, 16);
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    fn bounded_sharded_close_unblocks_producer() {
        use crate::ShedPolicy;
        let q: ShardedZmsq<u64> = ShardedZmsq::new(
            2,
            ZmsqConfig::default()
                .capacity(2)
                .shed_policy(ShedPolicy::Block),
        );
        // Fill both shard budgets (1 each after the split).
        for i in 0..2u64 {
            q.try_insert(i, i).unwrap();
        }
        assert!(matches!(
            q.try_insert(7, 7).unwrap_err(),
            InsertError::Full(7)
        ));
        std::thread::scope(|s| {
            let q2 = &q;
            let parked =
                s.spawn(move || q2.insert_timeout(8, 8, std::time::Duration::from_secs(60)));
            while q.producer_waiters() == 0 {
                std::thread::yield_now();
            }
            q.close();
            let err = parked.join().unwrap().unwrap_err();
            assert!(matches!(err, InsertError::Closed(8)), "{err:?}");
        });
        assert!(q.is_closed());
    }

    #[test]
    fn adapt_decision_policy() {
        // Heavy contention (>= 1 event per 8 extracts): widen.
        assert_eq!(adapt_decision(8, 128, 16), Some(16));
        assert_eq!(adapt_decision(8, 128, 1_000), Some(16));
        // Zero contention: decay by a quarter.
        assert_eq!(adapt_decision(16, 128, 0), Some(12));
        assert_eq!(adapt_decision(2, 128, 0), Some(1));
        assert_eq!(adapt_decision(1, 128, 0), Some(0)); // clamped by set_current_batch
                                                        // Moderate contention: hold.
        assert_eq!(adapt_decision(8, 128, 5), None);
        // Empty window: hold.
        assert_eq!(adapt_decision(8, 0, 0), None);
    }

    #[test]
    fn controller_narrows_under_low_contention() {
        // Single-threaded extraction generates zero trylock failures and
        // zero refill races, so the controller must walk the batch down
        // to batch_min (and the clamp must hold it there).
        let cfg = ZmsqConfig::default()
            .target_len(48)
            .batch(32)
            .adaptive_batch(4, 64);
        let q: ShardedZmsq<u64> = ShardedZmsq::new(1, cfg);
        assert!(q.is_adaptive());
        for i in 0..30_000u64 {
            q.insert(i, i);
        }
        for _ in 0..20_000 {
            q.extract_max().unwrap();
        }
        assert_eq!(
            q.shard(0).current_batch(),
            4,
            "zero-contention phase must narrow to batch_min"
        );
        assert!(q.mean_batch() == 4);
        let snap = pq_traits::ConcurrentPriorityQueue::metrics(&q).unwrap();
        assert_eq!(snap.gauge("zmsq.batch.current"), Some(4));
        assert!(snap.counter("zmsq.batch.narrows").unwrap() > 0);
        assert_eq!(snap.counter("zmsq.batch.widens"), Some(0));
    }

    #[test]
    fn controller_widens_on_contention_signal() {
        // Drive the decision path end-to-end by injecting the contention
        // counters' *observable effect*: run enough concurrent extractors
        // that at least some windows see trylock failures or refill
        // races; whenever they do, the batch must move up, and it must
        // never leave the configured range. (The deterministic widen
        // policy itself is covered by `adapt_decision_policy`; real
        // multi-core contention is exercised by the sharded_adapt bench.)
        let cfg = ZmsqConfig::default()
            .target_len(48)
            .batch(4)
            .adaptive_batch(4, 64);
        let q: ShardedZmsq<u64> = ShardedZmsq::new(1, cfg);
        for i in 0..60_000u64 {
            q.insert(i, i);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = &q;
                s.spawn(move || while q.extract_max().is_some() {});
            }
        });
        let cur = q.shard(0).current_batch();
        assert!((4..=64).contains(&cur), "batch left its range: {cur}");
        let snap = q.shard(0).stats();
        let contention = snap.trylock_fails + snap.refill_races;
        let widens = {
            let m = pq_traits::ConcurrentPriorityQueue::metrics(&q).unwrap();
            m.counter("zmsq.batch.widens").unwrap()
        };
        // On a multi-core box contention is near-certain and widens must
        // follow; on a single hardware thread the signal may legitimately
        // stay at zero — then no widen may be recorded either.
        if contention >= ADAPT_INTERVAL / 8 {
            assert!(widens > 0, "contention {contention} but no widen");
        }
    }

    #[test]
    fn metrics_expose_per_shard_gauges() {
        let q: ShardedZmsq<u64> =
            ShardedZmsq::new(4, ZmsqConfig::default().batch(8).target_len(12));
        for i in 0..100u64 {
            q.insert(i, i);
        }
        let snap = pq_traits::ConcurrentPriorityQueue::metrics(&q).unwrap();
        assert_eq!(snap.gauge("zmsq.shards"), Some(4));
        assert_eq!(snap.gauge("zmsq.batch.current"), Some(8));
        for i in 0..4 {
            assert_eq!(snap.gauge(&format!("zmsq.shard.{i}.batch")), Some(8));
            assert!(snap.gauge(&format!("zmsq.shard.{i}.len_hint")).is_some());
            assert!(snap.counter(&format!("zmsq.shard.{i}.inserts")).is_some());
        }
        assert_eq!(snap.counter("zmsq.inserts"), Some(100));
    }

    #[test]
    fn metrics_fold_per_shard_quality() {
        // shift 0: every key is sampled, so the fold is exact.
        let q: ShardedZmsq<u64> =
            ShardedZmsq::new(4, ZmsqConfig::default().batch(4).rank_estimator(0));
        for i in 0..200u64 {
            q.insert(i, i);
        }
        for _ in 0..80 {
            assert!(q.extract_max().is_some());
        }
        let snap = pq_traits::ConcurrentPriorityQueue::metrics(&q).unwrap();
        assert_eq!(snap.counter("quality.sampled_inserts"), Some(200));
        assert_eq!(snap.counter("quality.sampled_extracts"), Some(80));
        assert_eq!(snap.gauge("quality.sample_shift"), Some(0));
        let h = snap.hist("quality.est_rank").expect("folded est_rank");
        assert_eq!(h.count, 80);
        assert!(snap.hist("quality.staleness_ns").is_some());
        assert!(snap.ratio("quality.wasted_ratio").is_some());
        // Conservation across the fold: stored − matched − removed ==
        // live (no drops possible: 200 ≤ 4 shards × default slots).
        let stored = snap.counter("quality.stored").unwrap();
        let matched = snap.counter("quality.matched").unwrap();
        let removed = snap.counter("quality.removed_matched").unwrap();
        let live = snap.gauge("quality.reservoir.live").unwrap() as u64;
        assert_eq!(stored - matched - removed, live);
    }

    #[test]
    fn metrics_fold_per_shard_sojourn() {
        // shift 0: every key is stamped, so the folded counters are exact.
        let q: ShardedZmsq<u64> = ShardedZmsq::new(4, ZmsqConfig::default().batch(4).sojourn(0));
        for i in 0..200u64 {
            q.insert(i, i);
        }
        for _ in 0..80 {
            assert!(q.extract_max().is_some());
        }
        let snap = pq_traits::ConcurrentPriorityQueue::metrics(&q).unwrap();
        assert_eq!(snap.counter("sojourn.stamped"), Some(200));
        assert_eq!(snap.counter("sojourn.matched"), Some(80));
        assert_eq!(snap.gauge("sojourn.sample_shift"), Some(0));
        let h = snap.hist("queue.sojourn_ns").expect("folded sojourn hist");
        assert_eq!(h.count, 80);
        // Conservation across the fold: stamped − matched − removed == live.
        let stamped = snap.counter("sojourn.stamped").unwrap();
        let matched = snap.counter("sojourn.matched").unwrap();
        let removed = snap.counter("sojourn.removed").unwrap();
        let live = snap.gauge("sojourn.table.live").unwrap() as u64;
        assert_eq!(stamped - matched - removed, live);
    }

    #[test]
    fn metrics_omit_quality_when_estimator_off() {
        let q: ShardedZmsq<u64> = ShardedZmsq::new(2, ZmsqConfig::default().no_rank_estimator());
        q.insert(1, 1);
        let snap = pq_traits::ConcurrentPriorityQueue::metrics(&q).unwrap();
        assert!(snap.hist("quality.est_rank").is_none());
        assert!(snap.counter("quality.sampled_inserts").is_none());
    }

    #[test]
    fn trait_name_reflects_adaptivity() {
        use pq_traits::ConcurrentPriorityQueue as Pq;
        let plain: ShardedZmsq<u64> = ShardedZmsq::new(4, ZmsqConfig::default());
        assert_eq!(Pq::name(&plain), "zmsq-sharded-4");
        let adaptive: ShardedZmsq<u64> =
            ShardedZmsq::new(4, ZmsqConfig::default().adaptive_batch(4, 64));
        assert_eq!(Pq::name(&adaptive), "zmsq-sharded-4-adaptive");
        let tuned: ShardedZmsq<u64> = ShardedZmsq::with_tuning(
            4,
            ZmsqConfig::default(),
            ShardedConfig::new()
                .stickiness(8)
                .insert_buffer(16)
                .delete_buffer(4),
        );
        assert_eq!(Pq::name(&tuned), "zmsq-sharded-4-c8-i16-d4");
    }

    fn tuned_q(stick: usize, ins: usize, del: usize) -> ShardedZmsq<u64> {
        ShardedZmsq::with_tuning(
            4,
            ZmsqConfig::default().batch(8).target_len(12),
            ShardedConfig::new()
                .stickiness(stick)
                .insert_buffer(ins)
                .delete_buffer(del),
        )
    }

    #[test]
    fn default_tuning_keeps_legacy_paths() {
        let q: ShardedZmsq<u64> = ShardedZmsq::new(4, ZmsqConfig::default());
        assert!(!q.fast_ins && !q.fast_del);
        assert!(!q.tuning().is_tuned());
        // No buffer slot is ever registered on the legacy paths.
        q.insert(1, 1);
        assert_eq!(q.extract_max(), Some((1, 1)));
        assert_eq!(q.bufs.len(), 0);
    }

    #[test]
    fn capacity_disarms_fast_path() {
        let q: ShardedZmsq<u64> = ShardedZmsq::with_tuning(
            4,
            ZmsqConfig::default().capacity(16),
            ShardedConfig::new().stickiness(8).insert_buffer(8),
        );
        assert!(!q.fast_ins && !q.fast_del, "bounded queue must stay legacy");
    }

    #[test]
    fn buffered_insert_publishes_on_overflow() {
        let q = tuned_q(0, 4, 0);
        // Insert-only buffering still arms the extract side: the
        // flush-before-report loop is what keeps `None` honest while
        // elements are staged in insert buffers.
        assert!(q.fast_ins && q.fast_del);
        for i in 0..3u64 {
            q.insert(i, i);
        }
        // Below the buffer depth: staged, counted by len_hint, invisible
        // to the shards.
        assert_eq!(q.pending_ins.load(Ordering::Relaxed), 3);
        assert_eq!(q.shards.iter().map(|s| s.len_hint()).sum::<usize>(), 0);
        assert_eq!(q.len_hint(), 3);
        q.insert(3, 3); // overflow: the whole buffer flushes
        assert_eq!(q.pending_ins.load(Ordering::Relaxed), 0);
        assert_eq!(q.len_hint(), 4);
        let snap = pq_traits::ConcurrentPriorityQueue::metrics(&q).unwrap();
        assert_eq!(snap.counter("buf.insert_flushes"), Some(1));
        assert_eq!(snap.gauge("buf.pending_inserts"), Some(0));
        let mut got = 0;
        while q.extract_max().is_some() {
            got += 1;
        }
        assert_eq!(got, 4);
    }

    #[test]
    fn insert_buffer_only_tuning_keeps_emptiness_honest() {
        // Regression: with stickiness 0, insert_buffer > 1 and no delete
        // buffer, extract_max used to run the direct path with no
        // flush-before-report — insert(1, 1) then extract_max() returned
        // None while the element sat staged in the thread-local buffer.
        let q = tuned_q(0, 8, 0);
        q.insert(1, 1);
        assert_eq!(q.pending_ins.load(Ordering::Relaxed), 1, "staged");
        assert_eq!(q.extract_max(), Some((1, 1)), "staged element invisible");
        assert_eq!(q.extract_max(), None);
        // Same guarantee through the batch API.
        q.insert(2, 2);
        let mut out = Vec::new();
        assert_eq!(q.extract_batch(&mut out, 4), 1);
        assert_eq!(out, vec![(2, 2)]);
    }

    #[test]
    fn evicted_thread_reuses_its_buffer_slot() {
        // Regression: a thread whose `(instance, slot)` cache entry was
        // evicted used to register a brand-new slot on each return,
        // growing `bufs` (and every flush_all scan) without bound.
        let q = tuned_q(0, 8, 0);
        q.insert(1, 1);
        assert_eq!(q.bufs.len(), 1);
        // Simulate eviction: blow this thread's cache entry away.
        BUF_SLOTS.with(|c| c.borrow_mut().clear());
        q.insert(2, 2);
        assert_eq!(q.bufs.len(), 1, "re-registration must reuse the slot");
        // Both staged elements live in the one slot and drain out.
        let mut got = 0;
        while q.extract_max().is_some() {
            got += 1;
        }
        assert_eq!(got, 2);
    }

    #[test]
    fn eviction_frees_empty_slot_for_other_threads() {
        // Regression (PR 9 review): eviction used to leave one dead slot
        // per (thread, instance) forever; a thread cycling through many
        // live instances grew every instance's `flush_all` scan without
        // bound. Now eviction returns an empty slot to the free list,
        // and the next registrant claims it instead of growing `bufs`.
        let q = tuned_q(0, 8, 0);
        q.insert(1, 1);
        assert_eq!(q.extract_max(), Some((1, 1)));
        assert_eq!(q.bufs.len(), 1);
        assert_eq!(q.bufs.free_count(), 0);
        // Touch HOME_CACHE_CAP more instances: q's entry is the oldest
        // and gets evicted, freeing its (empty) slot.
        let others: Vec<_> = (0..HOME_CACHE_CAP).map(|_| tuned_q(0, 8, 0)).collect();
        for (i, o) in others.iter().enumerate() {
            o.insert(i as u64, 0);
            assert_eq!(o.extract_max(), Some((i as u64, 0)));
        }
        assert_eq!(
            q.bufs.free_count(),
            1,
            "evicted empty slot must return to the free list"
        );
        // A fresh thread claims the freed slot instead of growing.
        std::thread::scope(|s| {
            s.spawn(|| {
                q.insert(2, 2);
                assert_eq!(q.extract_max(), Some((2, 2)));
            });
        });
        assert_eq!(
            q.bufs.len(),
            1,
            "freed slot recycled, registry did not grow"
        );
        assert_eq!(q.bufs.free_count(), 0);
        // The original thread, returning after eviction, re-registers
        // (scan finds the slot now foreign-owned, so it grows by one —
        // bounded by live threads, not by instances visited).
        q.insert(3, 3);
        assert_eq!(q.extract_max(), Some((3, 3)));
        assert!(q.bufs.len() <= 2);
    }

    #[test]
    fn eviction_keeps_nonempty_slot_owned() {
        // A slot with staged elements cannot be freed from the eviction
        // hook (no shard access there): it must stay owned so flushes
        // still reach the staged elements and the owner rediscovers the
        // slot by tag scan.
        let q = tuned_q(0, 8, 0);
        q.insert(1, 1); // staged, buffer non-empty
        assert_eq!(q.pending_ins.load(Ordering::Relaxed), 1);
        let others: Vec<_> = (0..HOME_CACHE_CAP).map(|_| tuned_q(0, 8, 0)).collect();
        for (i, o) in others.iter().enumerate() {
            o.insert(i as u64, 0);
            assert_eq!(o.extract_max(), Some((i as u64, 0)));
        }
        assert_eq!(q.bufs.free_count(), 0, "non-empty slot must not be freed");
        // The staged element is still reachable (flush-before-report)...
        assert_eq!(q.extract_max(), Some((1, 1)));
        // ...and the owner reused its old slot rather than registering anew.
        assert_eq!(q.bufs.len(), 1);
    }

    #[test]
    fn close_reaps_slots_and_survivors_reregister() {
        let q = tuned_q(0, 8, 0);
        q.insert(1, 1);
        assert_eq!(q.extract_max(), Some((1, 1)));
        assert_eq!(q.bufs.len(), 1);
        q.close();
        assert_eq!(
            q.bufs.free_count(),
            1,
            "close must reap the emptied buffer slots"
        );
        // This thread's cache entry is now stale; the lock-then-revalidate
        // path must re-register (reclaiming the freed slot) rather than
        // share a slot with a future foreign owner.
        q.insert(2, 2); // staged/inserted into a closed queue: still flushable
        q.flush();
        assert_eq!(q.bufs.len(), 1, "re-registration reuses the reaped slot");
    }

    #[test]
    fn flush_publishes_partial_buffers() {
        let q = tuned_q(0, 64, 0);
        for i in 0..5u64 {
            q.insert(i, i);
        }
        assert_eq!(q.pending_ins.load(Ordering::Relaxed), 5);
        q.flush();
        assert_eq!(q.pending_ins.load(Ordering::Relaxed), 0);
        assert_eq!(q.shards.iter().map(|s| s.len_hint()).sum::<usize>(), 5);
    }

    #[test]
    fn close_flushes_buffers() {
        let q = tuned_q(4, 16, 0);
        for i in 0..7u64 {
            q.insert(i, i);
        }
        assert!(q.pending_ins.load(Ordering::Relaxed) > 0);
        q.close();
        assert_eq!(q.pending_ins.load(Ordering::Relaxed), 0);
        let mut got = 0;
        while q.extract_max().is_some() {
            got += 1;
        }
        assert_eq!(got, 7, "close must not strand staged inserts");
    }

    #[test]
    fn delete_buffer_serves_in_priority_order() {
        let q = tuned_q(0, 0, 8);
        assert!(q.fast_del);
        for i in 0..8u64 {
            q.shard(0).insert(i, i);
        }
        // One refill prefetches several elements; successive pops come
        // out highest-first from the buffer.
        let first = q.extract_max().unwrap().0;
        assert!(q.pending_del.load(Ordering::Relaxed) > 0, "no prefetch");
        let second = q.extract_max().unwrap().0;
        assert!(first >= second, "buffer served out of order");
        let snap = pq_traits::ConcurrentPriorityQueue::metrics(&q).unwrap();
        assert_eq!(snap.counter("buf.delete_refills"), Some(1));
    }

    #[test]
    fn empty_report_reclaims_foreign_buffers() {
        // A thread that prefetched elements into its delete buffer (and
        // staged an insert) then went idle must not make the queue lie
        // about emptiness to other threads.
        let q = std::sync::Arc::new(tuned_q(4, 4, 4));
        for i in 0..10u64 {
            q.shard(0).insert(i, i);
        }
        let q2 = std::sync::Arc::clone(&q);
        std::thread::spawn(move || {
            let _ = q2.extract_max().expect("elements present"); // prefetches
            q2.insert(99, 99); // stays staged (buffer depth 4 not reached)
        })
        .join()
        .unwrap();
        assert!(
            q.pending_del.load(Ordering::Relaxed) > 0 || q.pending_ins.load(Ordering::Relaxed) > 0,
            "test setup: something must be staged in the idle thread's buffer"
        );
        // 9 original elements + the staged 99 remain; this thread must
        // see every one of them before None.
        let mut got = 0;
        while q.extract_max().is_some() {
            got += 1;
        }
        assert_eq!(got, 10, "elements stranded in a foreign buffer");
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn tuned_roundtrip_conserves_across_threads() {
        let q = tuned_q(8, 8, 8);
        let got = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (q, got) = (&q, &got);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        q.insert((t * 5000 + i) % 7777, i);
                        if i % 2 == 0 && q.extract_max().is_some() {
                            got.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let mut rest = 0u64;
        while q.extract_max().is_some() {
            rest += 1;
        }
        assert_eq!(got.into_inner() + rest, 20_000);
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn tuned_extract_batch_conserves() {
        let q = tuned_q(4, 8, 8);
        for i in 0..1_000u64 {
            q.insert(i, i);
        }
        let mut out = Vec::new();
        loop {
            let n = q.extract_batch(&mut out, 37);
            if n == 0 {
                break;
            }
        }
        let mut keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..1_000).collect::<Vec<_>>(), "elements lost");
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn sticky_insert_reuses_then_resamples() {
        // stickiness 16, no buffering: 16 consecutive inserts land on
        // one shard before the target can move.
        let q = tuned_q(16, 0, 0);
        std::thread::spawn(move || {
            for i in 0..16u64 {
                q.insert(i, i);
            }
            let populated = (0..4).filter(|&s| q.shard(s).len_hint() > 0).count();
            assert_eq!(populated, 1, "sticky run split across shards");
            // Across many runs the random re-sample spreads the load.
            for i in 0..16 * 64u64 {
                q.insert(i, i);
            }
            let populated = (0..4).filter(|&s| q.shard(s).len_hint() > 0).count();
            assert!(populated > 1, "re-sample never moved off one shard");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn tuned_returns_highish_elements() {
        let q = tuned_q(8, 8, 8);
        for i in 0..20_000u64 {
            q.insert(i, i);
        }
        q.flush();
        let mut sum = 0u64;
        for _ in 0..200 {
            sum += q.extract_max().unwrap().0;
        }
        assert!(sum / 200 > 15_000, "tuned extraction rank too low");
    }
}
