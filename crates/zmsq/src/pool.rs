//! The shared extraction pool (§3.3, Listing 2).
//!
//! When `batch > 0`, a root extraction moves up to `batch` of the root
//! set's best elements into the pool; subsequent `extract_max` calls claim
//! one with a single `fetch_sub` on `poolNext` — no tree access, no lock.
//! Slots are filled in ascending priority order so the highest index
//! (claimed first) holds the best element.
//!
//! Three reclamation disciplines cover the paper's design space:
//!
//! * **ConsumerWait** — one buffer forever; the refiller spin-waits for
//!   lagging consumers to finish reading their claimed slots before
//!   overwriting (Listing 2 line 8). §3.5 notes this wait is what makes
//!   the pool safe without hazard pointers.
//! * **Hazard** — each refill publishes a fresh buffer and retires the old
//!   one into an [`smr::Domain`]; consumers protect the buffer pointer.
//! * **Leak** — fresh buffer per refill, old ones leaked ("ZMSQ (leak)").
//!
//! # Fault injection (`--features fault-inject`)
//!
//! * `pool.claim-delay` — fires between a claimant's unique `fetch_sub`
//!   on `next` and its read of the slot value, stretching exactly the
//!   window the ConsumerWait refiller's lagging-consumer wait exists to
//!   cover (Listing 2 line 8). With that wait removed, a delayed
//!   claimant races the next generation's `fill` and reads torn state —
//!   the chaos suite's mutation target.
//! * `pool.refill-delay` — fires between the refiller writing the slots
//!   and publishing them via the `next` store, widening the window in
//!   which consumers see an exhausted pool that is about to be refilled.
//! * `pool.skip-consumer-wait` — skips the lagging-consumer wait
//!   entirely, reintroducing the Listing 2 line 8 bug. Used by the
//!   deterministic test suite's mutation check to prove the oracles can
//!   detect the resulting overwrite race.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicIsize, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering};

use zmsq_sync::CachePadded;

const SLOT_EMPTY: u8 = 0;
const SLOT_FULL: u8 = 1;
/// Transient state while a direct (fast) inserter owns the slot.
const SLOT_FILLING: u8 = 2;

struct Slot<V> {
    state: AtomicU8,
    /// Copy of the slot's priority, readable without claiming — enables
    /// the conditional-extraction peek (§1's "non-blocking conditional
    /// extraction").
    prio: AtomicU64,
    value: UnsafeCell<MaybeUninit<(u64, V)>>,
}

// SAFETY: slot values are transferred with unique ownership — written only
// by the (serialized) refiller into consumed slots, read exactly once by
// the unique claimant of that index.
unsafe impl<V: Send> Sync for Slot<V> {}
unsafe impl<V: Send> Send for Slot<V> {}

/// One generation-reusable pool buffer.
pub(crate) struct PoolBuf<V> {
    /// Index of the next slot to claim; negative = exhausted. Decremented
    /// by every claimant (`poolNext` in the paper).
    next: CachePadded<AtomicIsize>,
    /// Slots fully consumed (value read) this generation.
    consumed: CachePadded<AtomicUsize>,
    /// Size of the current fill. Written by the serialized refiller.
    published: AtomicUsize,
    /// Elements added by direct (fast) insertion this generation — the
    /// refiller's lagging-consumer wait must account for them too.
    extra: CachePadded<AtomicUsize>,
    slots: Box<[Slot<V>]>,
}

impl<V: Send> PoolBuf<V> {
    pub fn new(cap: usize) -> Self {
        Self {
            next: CachePadded::new(AtomicIsize::new(-1)),
            consumed: CachePadded::new(AtomicUsize::new(0)),
            published: AtomicUsize::new(0),
            extra: CachePadded::new(AtomicUsize::new(0)),
            slots: (0..cap)
                .map(|_| Slot {
                    state: AtomicU8::new(SLOT_EMPTY),
                    prio: AtomicU64::new(0),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
        }
    }

    /// Whether unclaimed items remain. Only meaningful to a caller that
    /// knows this buffer cannot be concurrently retired (the current
    /// buffer observed under the root lock, or any buffer in the
    /// ConsumerWait / Leak disciplines).
    #[inline]
    pub fn has_items(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= 0
    }

    /// Claim one element, if any remain.
    #[inline]
    pub fn try_claim(&self) -> Option<(u64, V)> {
        // Cheap pre-check avoids driving `next` deeply negative (and a
        // wasted RMW) when the pool is dry — the common case between
        // refills under extraction-heavy load.
        if self.next.load(Ordering::Relaxed) < 0 {
            return None;
        }
        // AcqRel: acquire pairs with the refiller's release publish of
        // `next`, making the slot writes visible.
        let idx = self.next.fetch_sub(1, Ordering::AcqRel);
        if idx < 0 {
            return None;
        }
        // Chaos: a lagging consumer — claimed its index but has not yet
        // read the value. Safe only because the refiller waits for us.
        fault::fail_point!("pool.claim-delay");
        det::det_point!("pool.claim-window");
        let slot = &self.slots[idx as usize];
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_FULL);
        // SAFETY: index `idx` was claimed by exactly this thread (fetch_sub
        // is unique per index per generation), the refiller filled it
        // before publishing, and nobody overwrites it until `consumed`
        // accounts for our read below.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        slot.state.store(SLOT_EMPTY, Ordering::Relaxed);
        // Release: our value read above must be ordered before the
        // refiller (which acquires `consumed`) reuses the slot.
        self.consumed.fetch_add(1, Ordering::Release);
        Some(value)
    }

    /// Claim up to `want` elements in **one** `fetch_sub`, appending them
    /// to `out` in hand-out (descending-priority) order. Returns how many
    /// were claimed — `0` when the pool is exhausted.
    ///
    /// This is the batched-extraction fast path: a claimant that wants
    /// `want` elements reserves the index range `[top - want + 1, top]`
    /// atomically instead of issuing `want` contended RMWs. Indexes below
    /// zero in the reserved range simply shrink the claim (exactly like a
    /// single claim losing the race to exhaustion).
    pub fn try_claim_many(&self, out: &mut Vec<(u64, V)>, want: usize) -> usize {
        debug_assert!(want > 0);
        // Same cheap pre-check as try_claim: avoid driving `next` deeply
        // negative when the pool is dry.
        if self.next.load(Ordering::Relaxed) < 0 {
            return 0;
        }
        // AcqRel: acquire pairs with the refiller's release publish.
        let top = self.next.fetch_sub(want as isize, Ordering::AcqRel);
        if top < 0 {
            return 0;
        }
        let got = ((top + 1) as usize).min(want);
        // Chaos: the lagging-consumer window now spans `got` slots; the
        // refiller's wait accounts for each via `consumed` below.
        fault::fail_point!("pool.claim-delay");
        det::det_point!("pool.claim-window");
        for i in 0..got {
            let idx = top as usize - i;
            let slot = &self.slots[idx];
            debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_FULL);
            // SAFETY: the fetch_sub reserved indexes `top - want + 1..=top`
            // exclusively for this thread this generation; each index in
            // `0..=top` was filled before publish and is read exactly once
            // here.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            slot.state.store(SLOT_EMPTY, Ordering::Relaxed);
            out.push(value);
        }
        // Release: the value reads above must be ordered before the
        // refiller (which acquires `consumed`) reuses the slots.
        self.consumed.fetch_add(got, Ordering::Release);
        got
    }

    /// Conditional claim: take the pool's current best element only if
    /// its priority is at least `min_prio`.
    ///
    /// An ABA race on `next` (exhaust + refill landing on the same index
    /// between peek and claim) can hand us a below-threshold element; the
    /// caller must re-check the returned priority and compensate (the
    /// queue reinserts it — rare, and semantics stay relaxed).
    pub fn try_claim_if(&self, min_prio: u64) -> ClaimIf<(u64, V)> {
        loop {
            let idx = self.next.load(Ordering::Acquire);
            if idx < 0 {
                return ClaimIf::Exhausted;
            }
            let top = self.slots[idx as usize].prio.load(Ordering::Acquire);
            if top < min_prio {
                return ClaimIf::Below;
            }
            if self
                .next
                .compare_exchange_weak(idx, idx - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Chaos: same lagging-consumer window as try_claim.
                fault::fail_point!("pool.claim-delay");
                det::det_point!("pool.claim-window");
                let slot = &self.slots[idx as usize];
                debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_FULL);
                // SAFETY: the successful CAS uniquely claimed index `idx`
                // of the current generation (same argument as try_claim).
                let value = unsafe { (*slot.value.get()).assume_init_read() };
                slot.state.store(SLOT_EMPTY, Ordering::Relaxed);
                self.consumed.fetch_add(1, Ordering::Release);
                return ClaimIf::Got(value);
            }
        }
    }

    /// Direct (fast) insertion — the paper's §5 future-work mechanism:
    /// place `(prio, value)` straight into the pool so it can be
    /// extracted immediately, bypassing the tree.
    ///
    /// Succeeds only when the pool is live (not exhausted — we must never
    /// resurrect a pool a refiller may be rebuilding), the next slot up
    /// is free, and `prio` is at least the current top (preserving the
    /// ascending slot order that makes claims hand out best-first).
    /// On any conflict the element is handed back for a tree insert.
    ///
    /// Protocol: claim slot `next + 1` by CAS-ing its state
    /// EMPTY → FILLING, write the element, bump `extra` (so the
    /// ConsumerWait refiller accounts for the additional consumable),
    /// mark FULL, then publish by CAS-ing `next` forward. If the publish
    /// CAS loses (the pool drained or was exhausted meanwhile), roll
    /// everything back and return the element.
    pub fn try_fast_insert(&self, prio: u64, value: V) -> Result<(), (u64, V)> {
        let idx = self.next.load(Ordering::Acquire);
        if idx < 0 {
            return Err((prio, value)); // exhausted: refill owns the buffer
        }
        let target = idx as usize + 1;
        if target >= self.slots.len() {
            return Err((prio, value)); // pool already at capacity
        }
        // Order gate: claims take the highest index first, so the new
        // element must be >= the current top to keep best-first hand-out.
        let top = self.slots[idx as usize].prio.load(Ordering::Acquire);
        if prio < top {
            return Err((prio, value));
        }
        let slot = &self.slots[target];
        if slot
            .state
            .compare_exchange(
                SLOT_EMPTY,
                SLOT_FILLING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return Err((prio, value)); // another fast inserter owns it
        }
        // We own `target` exclusively: consumers cannot reach it until the
        // `next` CAS below, and the ConsumerWait refiller spins on FILLING.
        slot.prio.store(prio, Ordering::Relaxed);
        // SAFETY: unique ownership via the FILLING claim; the slot's
        // previous value (if any) was consumed before it became EMPTY.
        unsafe { (*slot.value.get()).write((prio, value)) };
        // Account before publish so the refiller can never under-wait;
        // SeqCst pairs with the refiller's read in wait_for_consumers.
        self.extra.fetch_add(1, Ordering::SeqCst);
        slot.state.store(SLOT_FULL, Ordering::Release);
        if self
            .next
            .compare_exchange(idx, idx + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return Ok(());
        }
        // Publish lost (consumers advanced past `idx`, or the pool
        // drained): take the element back and undo the accounting.
        self.extra.fetch_sub(1, Ordering::SeqCst);
        // SAFETY: the failed CAS means `next` never reached `target`, so
        // no consumer can have claimed it; we still own the slot.
        let (p, v) = unsafe { (*slot.value.get()).assume_init_read() };
        slot.state.store(SLOT_EMPTY, Ordering::Release);
        Err((p, v))
    }

    /// Spin until every claimed slot of the previous generation has been
    /// fully read — the paper's "wait for lagging consumers" (Listing 2
    /// line 8), extended to count direct fast inserts. Caller must be
    /// the serialized refiller.
    pub fn wait_for_consumers(&self) {
        // Mutation target for the deterministic suite: firing this point
        // skips the lagging-consumer wait, reintroducing the overwrite
        // race the wait exists to prevent (Listing 2 line 8). The det
        // harness must then catch torn reads within a bounded number of
        // schedules — proof the oracles can fail.
        fault::fail_point!("pool.skip-consumer-wait", return);
        let published = self.published.load(Ordering::Relaxed);
        let mut backoff = zmsq_sync::Backoff::new();
        // Acquire pairs with each consumer's release increment; `extra`
        // is re-read every iteration because an in-flight fast insert
        // that loses its publish CAS decrements it again.
        while self.consumed.load(Ordering::Acquire) < published + self.extra.load(Ordering::SeqCst)
        {
            backoff.spin();
        }
    }

    /// Fill slots `0..items.len()` (ascending priority order expected from
    /// the caller) and publish.
    ///
    /// Caller contract: serialized (root lock held), and either this is a
    /// fresh unpublished buffer or [`PoolBuf::wait_for_consumers`] has
    /// completed and the buffer is exhausted.
    pub fn fill(&self, items: &mut Vec<(u64, V)>) {
        let n = items.len();
        debug_assert!(n <= self.slots.len());
        debug_assert!(self.next.load(Ordering::Relaxed) < 0);
        self.consumed.store(0, Ordering::Relaxed);
        self.published.store(n, Ordering::Relaxed);
        self.extra.store(0, Ordering::Relaxed);
        for (i, item) in items.drain(..).enumerate() {
            let slot = &self.slots[i];
            // A fast inserter that claimed a slot just before the pool
            // exhausted resolves promptly (its publish CAS fails against
            // the drained `next` and it rolls back to EMPTY).
            let mut backoff = zmsq_sync::Backoff::new();
            while slot.state.load(Ordering::Acquire) == SLOT_FILLING {
                backoff.spin();
            }
            debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_EMPTY);
            slot.prio.store(item.0, Ordering::Relaxed);
            // SAFETY: serialized refiller; previous generation fully
            // consumed (caller contract), so the slot is logically empty.
            unsafe { (*slot.value.get()).write(item) };
            slot.state.store(SLOT_FULL, Ordering::Relaxed);
        }
        // Chaos: hold the filled-but-unpublished state open.
        fault::fail_point!("pool.refill-delay");
        det::det_point!("pool.refill-window");
        // Release publish: claimants' acquire fetch_sub sees the slots.
        self.next.store(n as isize - 1, Ordering::Release);
    }
}

impl<V> Drop for PoolBuf<V> {
    fn drop(&mut self) {
        // Claimed-but-unread slots cannot exist at drop time (drop implies
        // no concurrent claimants); FULL slots still own their value.
        for slot in self.slots.iter_mut() {
            if *slot.state.get_mut() == SLOT_FULL {
                // SAFETY: FULL means the refiller wrote it and no claimant
                // consumed it.
                unsafe { slot.value.get_mut().assume_init_drop() };
            }
        }
    }
}

/// Result of a conditional pool claim.
pub(crate) enum ClaimIf<T> {
    /// Claimed an element that satisfied the threshold at peek time.
    Got(T),
    /// The pool's best remaining element is below the threshold.
    Below,
    /// No elements remain in the pool.
    Exhausted,
}

pub(crate) enum Reclaim {
    Hazard(smr::Domain),
    Leak(smr::LeakyDomain),
}

/// The pool with its reclamation discipline.
pub(crate) enum Pool<V> {
    /// `batch == 0`: no pool at all (strict mode).
    Disabled,
    /// ConsumerWait: a single buffer reused in place.
    Fixed(Box<PoolBuf<V>>),
    /// Hazard / Leak: buffer pointer swapped on each refill.
    Swapped {
        cur: AtomicPtr<PoolBuf<V>>,
        reclaim: Reclaim,
    },
}

impl<V: Send> Pool<V> {
    pub fn new(batch: usize, mode: crate::Reclamation) -> Self {
        if batch == 0 {
            return Pool::Disabled;
        }
        match mode {
            crate::Reclamation::ConsumerWait => Pool::Fixed(Box::new(PoolBuf::new(batch))),
            crate::Reclamation::Hazard => Pool::Swapped {
                cur: AtomicPtr::new(Box::into_raw(Box::new(PoolBuf::new(batch)))),
                reclaim: Reclaim::Hazard(smr::Domain::new()),
            },
            crate::Reclamation::Leak => Pool::Swapped {
                cur: AtomicPtr::new(Box::into_raw(Box::new(PoolBuf::new(batch)))),
                reclaim: Reclaim::Leak(smr::LeakyDomain::new()),
            },
        }
    }

    /// Fast-path claim (no root lock).
    #[inline]
    pub fn try_claim(&self) -> Option<(u64, V)> {
        match self {
            Pool::Disabled => None,
            Pool::Fixed(buf) => buf.try_claim(),
            Pool::Swapped { cur, reclaim } => match reclaim {
                Reclaim::Hazard(domain) => {
                    let mut hp = domain.hazard();
                    let p = hp.protect(cur);
                    // SAFETY: protected — cannot be freed while we read.
                    unsafe { (*p).try_claim() }
                }
                Reclaim::Leak(_) => {
                    // Leaked buffers are never freed, so a plain load is
                    // sufficient (this is exactly the unsoundness-in-C++
                    // shortcut the leak arm measures; in Rust it is safe
                    // *because* the leak makes buffers immortal).
                    let p = cur.load(Ordering::Acquire);
                    // SAFETY: immortal buffer.
                    unsafe { (*p).try_claim() }
                }
            },
        }
    }

    /// Batched fast-path claim (no root lock): up to `want` elements in
    /// one `fetch_sub`. See [`PoolBuf::try_claim_many`].
    #[inline]
    pub fn try_claim_many(&self, out: &mut Vec<(u64, V)>, want: usize) -> usize {
        match self {
            Pool::Disabled => 0,
            Pool::Fixed(buf) => buf.try_claim_many(out, want),
            Pool::Swapped { cur, reclaim } => match reclaim {
                Reclaim::Hazard(domain) => {
                    let mut hp = domain.hazard();
                    let p = hp.protect(cur);
                    // SAFETY: protected — cannot be freed while we read.
                    unsafe { (*p).try_claim_many(out, want) }
                }
                Reclaim::Leak(_) => {
                    let p = cur.load(Ordering::Acquire);
                    // SAFETY: immortal buffer.
                    unsafe { (*p).try_claim_many(out, want) }
                }
            },
        }
    }

    /// Conditional fast-path claim (no root lock). See
    /// [`PoolBuf::try_claim_if`].
    #[inline]
    pub fn try_claim_if(&self, min_prio: u64) -> ClaimIf<(u64, V)> {
        match self {
            Pool::Disabled => ClaimIf::Exhausted,
            Pool::Fixed(buf) => buf.try_claim_if(min_prio),
            Pool::Swapped { cur, reclaim } => match reclaim {
                Reclaim::Hazard(domain) => {
                    let mut hp = domain.hazard();
                    let p = hp.protect(cur);
                    // SAFETY: protected.
                    unsafe { (*p).try_claim_if(min_prio) }
                }
                Reclaim::Leak(_) => {
                    let p = cur.load(Ordering::Acquire);
                    // SAFETY: immortal buffer.
                    unsafe { (*p).try_claim_if(min_prio) }
                }
            },
        }
    }

    /// Direct fast insertion (§5 future work); no root lock. Returns the
    /// element on any conflict so the caller can do a tree insert.
    #[inline]
    pub fn try_fast_insert(&self, prio: u64, value: V) -> Result<(), (u64, V)> {
        match self {
            Pool::Disabled => Err((prio, value)),
            Pool::Fixed(buf) => buf.try_fast_insert(prio, value),
            Pool::Swapped { cur, reclaim } => match reclaim {
                Reclaim::Hazard(domain) => {
                    let mut hp = domain.hazard();
                    let p = hp.protect(cur);
                    // SAFETY: protected — the buffer cannot be freed while
                    // we hold the hazard, even if a refill retires it
                    // mid-operation (our publish CAS then fails and we
                    // roll back, handing the element to the tree).
                    unsafe { (*p).try_fast_insert(prio, value) }
                }
                Reclaim::Leak(_) => {
                    let p = cur.load(Ordering::Acquire);
                    // SAFETY: immortal buffer.
                    unsafe { (*p).try_fast_insert(prio, value) }
                }
            },
        }
    }

    /// Whether unclaimed items remain. **Caller must hold the root lock**
    /// (which serializes refills, keeping the current buffer alive).
    #[inline]
    pub fn has_items_locked(&self) -> bool {
        match self {
            Pool::Disabled => false,
            Pool::Fixed(buf) => buf.has_items(),
            Pool::Swapped { cur, .. } => {
                let p = cur.load(Ordering::Acquire);
                // SAFETY: the root lock serializes refills; the current
                // buffer cannot be retired while we hold it.
                unsafe { (*p).has_items() }
            }
        }
    }

    /// Refill with `items` (ascending priority order). **Caller must hold
    /// the root lock** and have observed the pool exhausted.
    pub fn refill_locked(&self, items: &mut Vec<(u64, V)>) {
        match self {
            Pool::Disabled => unreachable!("refill with batch == 0"),
            Pool::Fixed(buf) => {
                buf.wait_for_consumers();
                buf.fill(items);
            }
            Pool::Swapped { cur, reclaim } => {
                let fresh = Box::new(PoolBuf::new(items.len()));
                fresh.fill(items);
                let old = cur.swap(Box::into_raw(fresh), Ordering::AcqRel);
                match reclaim {
                    // SAFETY: `old` is unlinked (no new claimant can reach
                    // it); in-flight claimants hold hazards on it.
                    Reclaim::Hazard(domain) => unsafe { domain.retire(old) },
                    // SAFETY: intentionally leaked.
                    Reclaim::Leak(leaky) => unsafe { leaky.retire(old) },
                }
            }
        }
    }

    /// Number of buffers leaked (Leak mode only).
    pub fn leaked_count(&self) -> u64 {
        match self {
            Pool::Swapped {
                reclaim: Reclaim::Leak(l),
                ..
            } => l.leaked_count(),
            _ => 0,
        }
    }
}

impl<V> Drop for Pool<V> {
    fn drop(&mut self) {
        if let Pool::Swapped { cur, .. } = self {
            let p = *cur.get_mut();
            if !p.is_null() {
                // SAFETY: exclusive access at drop; the current buffer was
                // never retired.
                unsafe { drop(Box::from_raw(p)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reclamation;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn empty_buffer_claims_nothing() {
        let buf: PoolBuf<u64> = PoolBuf::new(8);
        assert!(!buf.has_items());
        assert_eq!(buf.try_claim(), None);
        // Repeated failed claims stay harmless.
        for _ in 0..100 {
            assert_eq!(buf.try_claim(), None);
        }
    }

    #[test]
    fn fill_then_drain_in_descending_order() {
        let buf: PoolBuf<u64> = PoolBuf::new(8);
        let mut items: Vec<(u64, u64)> = (1..=5).map(|k| (k, k * 10)).collect();
        buf.fill(&mut items);
        assert!(items.is_empty());
        // Highest index claimed first => best element first.
        for expect in (1..=5u64).rev() {
            assert_eq!(buf.try_claim(), Some((expect, expect * 10)));
        }
        assert_eq!(buf.try_claim(), None);
    }

    #[test]
    fn wait_for_consumers_then_reuse() {
        let buf: PoolBuf<u64> = PoolBuf::new(4);
        let mut items = vec![(1, 1), (2, 2)];
        buf.fill(&mut items);
        assert_eq!(buf.try_claim(), Some((2, 2)));
        assert_eq!(buf.try_claim(), Some((1, 1)));
        // All consumed: wait returns immediately and refill works.
        buf.wait_for_consumers();
        let mut items2 = vec![(7, 7), (8, 8), (9, 9)];
        buf.fill(&mut items2);
        assert_eq!(buf.try_claim(), Some((9, 9)));
        assert_eq!(buf.try_claim(), Some((8, 8)));
        assert_eq!(buf.try_claim(), Some((7, 7)));
        assert_eq!(buf.try_claim(), None);
    }

    #[test]
    fn claim_many_descending_then_short_then_zero() {
        let buf: PoolBuf<u64> = PoolBuf::new(8);
        let mut items: Vec<(u64, u64)> = (1..=6).map(|k| (k, k * 10)).collect();
        buf.fill(&mut items);
        let mut out = Vec::new();
        assert_eq!(buf.try_claim_many(&mut out, 4), 4);
        assert_eq!(out, vec![(6, 60), (5, 50), (4, 40), (3, 30)]);
        // Fewer remain than requested: short claim, not a failure.
        assert_eq!(buf.try_claim_many(&mut out, 4), 2);
        assert_eq!(&out[4..], &[(2, 20), (1, 10)]);
        assert_eq!(buf.try_claim_many(&mut out, 4), 0);
        assert_eq!(buf.try_claim(), None);
        // Accounting closed out: the refiller would not wait.
        buf.wait_for_consumers();
    }

    #[test]
    fn claim_many_interleaves_with_single_claims() {
        let buf: PoolBuf<u64> = PoolBuf::new(8);
        let mut items: Vec<(u64, u64)> = (1..=8).map(|k| (k, k)).collect();
        buf.fill(&mut items);
        let mut out = Vec::new();
        assert_eq!(buf.try_claim(), Some((8, 8)));
        assert_eq!(buf.try_claim_many(&mut out, 3), 3);
        assert_eq!(buf.try_claim(), Some((4, 4)));
        assert_eq!(buf.try_claim_many(&mut out, 100), 3);
        let got: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        assert_eq!(got, vec![7, 6, 5, 3, 2, 1]);
        buf.wait_for_consumers();
    }

    #[test]
    fn claim_many_concurrent_conserves() {
        const BATCH: usize = 64;
        let pool = Arc::new(Pool::<u64>::new(BATCH, Reclamation::ConsumerWait));
        let mut items: Vec<(u64, u64)> = (0..BATCH as u64).map(|k| (k, k)).collect();
        pool.refill_locked(&mut items);
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for want in [1usize, 3, 7, 64] {
            let (pool, total) = (Arc::clone(&pool), Arc::clone(&total));
            handles.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                loop {
                    let got = pool.try_claim_many(&mut out, want);
                    if got == 0 {
                        break;
                    }
                    total.fetch_add(got as u64, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), BATCH as u64);
    }

    #[test]
    fn dropping_partially_consumed_buffer_drops_values() {
        struct D(Arc<AtomicU64>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicU64::new(3));
        {
            let buf: PoolBuf<D> = PoolBuf::new(4);
            let mut items = vec![
                (1, D(Arc::clone(&live))),
                (2, D(Arc::clone(&live))),
                (3, D(Arc::clone(&live))),
            ];
            buf.fill(&mut items);
            let claimed = buf.try_claim().unwrap();
            assert_eq!(claimed.0, 3);
            drop(claimed);
        }
        assert_eq!(live.load(Ordering::SeqCst), 0, "unclaimed slots dropped");
    }

    fn exercise_concurrent(mode: Reclamation) {
        const CONSUMERS: usize = 4;
        const GENERATIONS: usize = 200;
        const BATCH: usize = 16;
        let pool = Arc::new(Pool::<u64>::new(BATCH, mode));
        let taken = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for _ in 0..CONSUMERS {
            let pool = Arc::clone(&pool);
            let taken = Arc::clone(&taken);
            let sum = Arc::clone(&sum);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while stop.load(Ordering::Acquire) == 0 {
                    if let Some((k, v)) = pool.try_claim() {
                        assert_eq!(k, v);
                        taken.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(k, Ordering::Relaxed);
                    }
                }
                // Final drain.
                while let Some((k, _)) = pool.try_claim() {
                    taken.fetch_add(1, Ordering::Relaxed);
                    sum.fetch_add(k, Ordering::Relaxed);
                }
            }));
        }

        // Single refiller (stands in for the root-lock holder).
        let mut expect_sum = 0u64;
        let mut produced = 0u64;
        for g in 0..GENERATIONS {
            // Wait until exhausted, as the real refiller does.
            while pool.has_items_locked() {
                std::hint::spin_loop();
            }
            let mut items: Vec<(u64, u64)> = (0..BATCH as u64)
                .map(|i| {
                    let k = g as u64 * 1000 + i;
                    expect_sum += k;
                    produced += 1;
                    (k, k)
                })
                .collect();
            pool.refill_locked(&mut items);
        }
        while pool.has_items_locked() {
            std::hint::spin_loop();
        }
        stop.store(1, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::Relaxed), produced);
        assert_eq!(sum.load(Ordering::Relaxed), expect_sum);
        if mode == Reclamation::Leak {
            assert_eq!(pool.leaked_count(), GENERATIONS as u64);
        }
    }

    #[test]
    fn concurrent_consumer_wait() {
        exercise_concurrent(Reclamation::ConsumerWait);
    }

    #[test]
    fn concurrent_hazard() {
        exercise_concurrent(Reclamation::Hazard);
    }

    #[test]
    fn concurrent_leak() {
        exercise_concurrent(Reclamation::Leak);
    }

    #[test]
    fn fast_insert_basic_protocol() {
        let buf: PoolBuf<u64> = PoolBuf::new(8);
        // Exhausted pool rejects (never resurrect a refillable buffer).
        assert!(buf.try_fast_insert(99, 99).is_err());

        let mut items = vec![(1, 1), (5, 5)];
        buf.fill(&mut items);
        // Below the current top (5): rejected to keep best-first order.
        assert_eq!(buf.try_fast_insert(3, 3), Err((3, 3)));
        // At/above the top: accepted and handed out first.
        assert_eq!(buf.try_fast_insert(9, 9), Ok(()));
        assert_eq!(buf.try_claim(), Some((9, 9)));
        assert_eq!(buf.try_claim(), Some((5, 5)));
        assert_eq!(buf.try_claim(), Some((1, 1)));
        assert_eq!(buf.try_claim(), None);
    }

    #[test]
    fn fast_insert_respects_capacity() {
        let buf: PoolBuf<u64> = PoolBuf::new(3);
        let mut items = vec![(1, 1), (2, 2), (3, 3)];
        buf.fill(&mut items);
        assert!(
            buf.try_fast_insert(10, 10).is_err(),
            "no slot above the top"
        );
        // After one claim there is headroom again.
        assert_eq!(buf.try_claim(), Some((3, 3)));
        assert_eq!(buf.try_fast_insert(10, 10), Ok(()));
        assert_eq!(buf.try_claim(), Some((10, 10)));
    }

    #[test]
    fn fast_insert_then_refill_accounting() {
        // ConsumerWait accounting: the refiller's wait must cover the
        // extra fast-inserted element.
        let pool = Pool::<u64>::new(4, Reclamation::ConsumerWait);
        let mut items = vec![(1, 1), (2, 2)];
        pool.refill_locked(&mut items);
        assert_eq!(pool.try_fast_insert(7, 7), Ok(()));
        // Drain all three, then refill must succeed without hanging.
        let mut got = Vec::new();
        while let Some((k, _)) = pool.try_claim() {
            got.push(k);
        }
        assert_eq!(got, vec![7, 2, 1]);
        let mut items2 = vec![(4, 4)];
        pool.refill_locked(&mut items2);
        assert_eq!(pool.try_claim(), Some((4, 4)));
    }

    fn exercise_fast_insert_concurrent(mode: Reclamation) {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        const CONSUMERS: usize = 3;
        const INSERTERS: usize = 2;
        const GENERATIONS: usize = 100;
        const BATCH: usize = 8;
        let pool = Arc::new(Pool::<u64>::new(BATCH, mode));
        let taken = Arc::new(AtomicU64::new(0));
        let fast_ok = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for _ in 0..CONSUMERS {
            let (pool, taken, stop) = (Arc::clone(&pool), Arc::clone(&taken), Arc::clone(&stop));
            handles.push(std::thread::spawn(move || {
                loop {
                    if pool.try_claim().is_some() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    } else if stop.load(Ordering::Acquire) != 0 {
                        break;
                    }
                }
                while pool.try_claim().is_some() {
                    taken.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for t in 0..INSERTERS as u64 {
            let (pool, fast_ok, stop) =
                (Arc::clone(&pool), Arc::clone(&fast_ok), Arc::clone(&stop));
            handles.push(std::thread::spawn(move || {
                let mut x = 0xFA57 + t;
                while stop.load(Ordering::Acquire) == 0 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if pool.try_fast_insert(u64::MAX - (x % 1000), x).is_ok() {
                        fast_ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }

        let mut produced = 0u64;
        for g in 0..GENERATIONS {
            while pool.has_items_locked() {
                std::hint::spin_loop();
            }
            let mut items: Vec<(u64, u64)> =
                (0..BATCH as u64).map(|i| (g as u64 * 100 + i, i)).collect();
            produced += BATCH as u64;
            pool.refill_locked(&mut items);
        }
        while pool.has_items_locked() {
            std::hint::spin_loop();
        }
        stop.store(1, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        // Conservation: every refilled and every successful fast insert
        // was claimed exactly once.
        assert_eq!(
            taken.load(Ordering::Relaxed),
            produced + fast_ok.load(Ordering::Relaxed),
            "{mode:?}: lost or duplicated elements"
        );
    }

    #[test]
    fn fast_insert_concurrent_consumer_wait() {
        exercise_fast_insert_concurrent(Reclamation::ConsumerWait);
    }

    #[test]
    fn fast_insert_concurrent_hazard() {
        exercise_fast_insert_concurrent(Reclamation::Hazard);
    }

    #[test]
    fn fast_insert_concurrent_leak() {
        exercise_fast_insert_concurrent(Reclamation::Leak);
    }

    #[test]
    fn disabled_pool_is_inert() {
        let pool: Pool<u64> = Pool::new(0, Reclamation::Hazard);
        assert!(matches!(pool, Pool::Disabled));
        assert_eq!(pool.try_claim(), None);
        assert!(!pool.has_items_locked());
    }

    /// With claim-delay injected, consumers linger inside the
    /// claimed-but-unread window while the refiller is already spinning
    /// in `wait_for_consumers` — conservation must still hold, which is
    /// exactly what that wait guarantees (and what the chaos suite's
    /// mutation check removes to prove the test can fail).
    #[test]
    #[cfg(feature = "fault-inject")]
    fn injected_claim_delay_is_covered_by_consumer_wait() {
        let _x = fault::exclusive();
        fault::reset();
        fault::set_seed(0xC1A1_4DE1);
        fault::configure(
            "pool.claim-delay",
            fault::Policy::new(fault::Trigger::Prob(0.25)).with_action(fault::Action::SleepMs(1)),
        );
        exercise_concurrent(Reclamation::ConsumerWait);
        assert!(
            fault::hit_count("pool.claim-delay") > 0,
            "failpoint never fired"
        );
        fault::reset();
    }
}
