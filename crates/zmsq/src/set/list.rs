//! Sorted singly-linked-list set — the paper's default representation.
//!
//! Nodes are kept in **descending** priority order, so `remove_max` (the
//! hot path during extraction and set swaps) is O(1) pointer surgery, at
//! the cost of an O(position) walk on insert. This mirrors the mound's
//! list-of-sorted-values and is what the unlabeled "ZMSQ" curves use.

use super::NodeSet;

struct Node<V> {
    prio: u64,
    value: V,
    next: Option<Box<Node<V>>>,
}

/// A multiset as a descending sorted singly linked list.
pub struct ListSet<V> {
    head: Option<Box<Node<V>>>,
    len: usize,
}

impl<V> Default for ListSet<V> {
    fn default() -> Self {
        Self { head: None, len: 0 }
    }
}

impl<V: Send> NodeSet<V> for ListSet<V> {
    const KIND: &'static str = "list";
    type Arena = ();

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn max_key(&self) -> Option<u64> {
        self.head.as_ref().map(|n| n.prio)
    }

    fn min_key(&self) -> Option<u64> {
        let mut cur = self.head.as_deref()?;
        while let Some(next) = cur.next.as_deref() {
            cur = next;
        }
        Some(cur.prio)
    }

    fn insert(&mut self, prio: u64, value: V) {
        let mut cursor = &mut self.head;
        // Walk until the next node's priority is <= ours (descending order;
        // equal keys insert before their peers, which is irrelevant for a
        // multiset).
        while cursor.as_ref().is_some_and(|n| n.prio > prio) {
            cursor = &mut cursor.as_mut().unwrap().next;
        }
        let next = cursor.take();
        *cursor = Some(Box::new(Node { prio, value, next }));
        self.len += 1;
    }

    #[inline]
    fn remove_max(&mut self) -> Option<(u64, V)> {
        let head = self.head.take()?;
        self.head = head.next;
        self.len -= 1;
        Some((head.prio, head.value))
    }

    fn remove_min(&mut self) -> Option<(u64, V)> {
        self.head.as_ref()?;
        self.len -= 1;
        // Find the link whose node is last.
        let mut cursor = &mut self.head;
        while cursor.as_ref().unwrap().next.is_some() {
            cursor = &mut cursor.as_mut().unwrap().next;
        }
        let last = cursor.take().unwrap();
        Some((last.prio, last.value))
    }

    fn drain_top(&mut self, n: usize, out: &mut Vec<(u64, V)>) {
        let take = n.min(self.len);
        let start = out.len();
        for _ in 0..take {
            let head = self.head.take().unwrap();
            self.head = head.next;
            out.push((head.prio, head.value));
        }
        self.len -= take;
        // Heads came off in descending order; the contract is ascending.
        out[start..].reverse();
    }

    fn split_lower_half(&mut self) -> Vec<(u64, V)> {
        let remove = self.len / 2;
        if remove == 0 {
            return Vec::new();
        }
        let keep = self.len - remove;
        // Walk to the last kept node and detach its tail.
        let mut cursor = self.head.as_mut().unwrap();
        for _ in 1..keep {
            cursor = cursor.next.as_mut().unwrap();
        }
        let mut tail = cursor.next.take();
        self.len = keep;
        let mut out = Vec::with_capacity(remove);
        while let Some(node) = tail {
            out.push((node.prio, node.value));
            tail = node.next;
        }
        out
    }

    fn drain_all(&mut self, out: &mut Vec<(u64, V)>) {
        let mut cur = self.head.take();
        while let Some(node) = cur {
            out.push((node.prio, node.value));
            cur = node.next;
        }
        self.len = 0;
    }
}

impl<V> Drop for ListSet<V> {
    fn drop(&mut self) {
        // Iterative drop: the derived recursive drop would overflow the
        // stack on long lists (sets can transiently hold 2*targetLen+1
        // elements, but a defensive bound costs nothing).
        let mut cur = self.head.take();
        while let Some(mut node) = cur {
            cur = node.next.take();
        }
    }
}

impl<V> std::fmt::Debug for ListSet<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut keys = Vec::new();
        let mut cur = self.head.as_deref();
        while let Some(n) = cur {
            keys.push(n.prio);
            cur = n.next.as_deref();
        }
        f.debug_struct("ListSet").field("keys", &keys).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_descending_order() {
        let mut s = ListSet::default();
        for k in [5u64, 2, 8, 8, 1, 9] {
            s.insert(k, ());
        }
        let mut prev = u64::MAX;
        let mut cur = s.head.as_deref();
        while let Some(n) = cur {
            assert!(n.prio <= prev, "list must be descending");
            prev = n.prio;
            cur = n.next.as_deref();
        }
    }

    #[test]
    fn long_list_drop_does_not_overflow() {
        let mut s = ListSet::default();
        for k in 0..200_000u64 {
            s.insert(k, ()); // ascending inserts: each becomes the new head
        }
        drop(s);
    }

    #[test]
    fn split_preserves_order_of_kept_half() {
        let mut s = ListSet::default();
        for k in 1..=10u64 {
            s.insert(k, k);
        }
        let lower = s.split_lower_half();
        assert_eq!(lower.len(), 5);
        assert_eq!(s.remove_max(), Some((10, 10)));
        assert_eq!(s.remove_min(), Some((6, 6)));
    }
}
