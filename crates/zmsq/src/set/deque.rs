//! Sorted-deque set — an extension beyond the paper's two representations.
//!
//! Reproduction finding (see EXPERIMENTS.md): with a plain singly-linked
//! list, the §3.2 parent-min swap costs an O(set_len) pointer walk to
//! remove the parent's minimum plus another to insert the demoted element
//! near the child's tail — and it fires on most inserts, dominating the
//! list variant's insert cost. The paper asserts the swap adds "no
//! measurable overhead", which implies a representation with cheap access
//! to *both* ends.
//!
//! This set provides exactly that: elements sorted **ascending** in a
//! `VecDeque`, so the max (back) and min (front) are O(1), inserts are a
//! binary search plus a contiguous shift, and `drain_top` is a tail
//! split. It keeps the ordered-traversal property the pool refill relies
//! on while fixing the min-swap's complexity.

use std::collections::VecDeque;

use super::NodeSet;

/// A multiset as an ascending sorted deque.
pub struct DequeSet<V> {
    items: VecDeque<(u64, V)>,
}

impl<V> Default for DequeSet<V> {
    fn default() -> Self {
        Self {
            items: VecDeque::new(),
        }
    }
}

impl<V> DequeSet<V> {
    /// First index whose priority is > `prio` (insertion point keeping
    /// ascending order, after any equal keys).
    fn upper_bound(&self, prio: u64) -> usize {
        self.items.partition_point(|&(k, _)| k <= prio)
    }
}

impl<V: Send> NodeSet<V> for DequeSet<V> {
    const KIND: &'static str = "deque";
    type Arena = ();

    #[inline]
    fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    fn max_key(&self) -> Option<u64> {
        self.items.back().map(|&(k, _)| k)
    }

    #[inline]
    fn min_key(&self) -> Option<u64> {
        self.items.front().map(|&(k, _)| k)
    }

    fn insert(&mut self, prio: u64, value: V) {
        // Fast paths for the two hot cases: new max (regular insertion)
        // and new min (the demoted element of a parent-min swap).
        if self.max_key().is_none_or(|m| prio >= m) {
            self.items.push_back((prio, value));
        } else if self.min_key().is_some_and(|m| prio <= m) {
            self.items.push_front((prio, value));
        } else {
            let at = self.upper_bound(prio);
            self.items.insert(at, (prio, value));
        }
    }

    #[inline]
    fn remove_max(&mut self) -> Option<(u64, V)> {
        self.items.pop_back()
    }

    #[inline]
    fn remove_min(&mut self) -> Option<(u64, V)> {
        self.items.pop_front()
    }

    fn drain_top(&mut self, n: usize, out: &mut Vec<(u64, V)>) {
        let take = n.min(self.items.len());
        let split = self.items.len() - take;
        out.extend(self.items.split_off(split)); // already ascending
    }

    fn split_lower_half(&mut self) -> Vec<(u64, V)> {
        let remove = self.items.len() / 2;
        self.items.drain(..remove).collect()
    }

    fn drain_all(&mut self, out: &mut Vec<(u64, V)>) {
        out.extend(self.items.drain(..));
    }
}

impl<V> std::fmt::Debug for DequeSet<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: Vec<u64> = self.items.iter().map(|&(k, _)| k).collect();
        f.debug_struct("DequeSet").field("keys", &keys).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_sorted_through_mixed_inserts() {
        let mut s = DequeSet::default();
        for k in [50u64, 10, 90, 50, 30, 70, 10, 90] {
            s.insert(k, k);
        }
        let keys: Vec<u64> = s.items.iter().map(|&(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(s.min_key(), Some(10));
        assert_eq!(s.max_key(), Some(90));
    }

    #[test]
    fn min_swap_primitive_ops_are_end_ops() {
        // The pattern regular_insert uses: remove_min from the parent and
        // push the demoted element as the child's new low element.
        let mut parent = DequeSet::default();
        for k in [10u64, 40, 70] {
            parent.insert(k, k);
        }
        let demoted = parent.remove_min().unwrap();
        assert_eq!(demoted, (10, 10));
        parent.insert(55, 55);
        assert_eq!(parent.min_key(), Some(40));

        let mut child = DequeSet::default();
        for k in [20u64, 30] {
            child.insert(k, k);
        }
        child.insert(demoted.0, demoted.1); // <= min: push_front path
        assert_eq!(child.min_key(), Some(10));
        assert_eq!(child.max_key(), Some(30));
    }

    #[test]
    fn drain_top_is_ascending_tail() {
        let mut s = DequeSet::default();
        for k in [5u64, 1, 9, 3, 7] {
            s.insert(k, k);
        }
        let mut out = Vec::new();
        s.drain_top(2, &mut out);
        assert_eq!(out, vec![(7, 7), (9, 9)]);
        assert_eq!(s.max_key(), Some(5));
    }
}
