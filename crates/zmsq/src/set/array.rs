//! Unsorted array set — the "(array)" variant of the paper's evaluation.
//!
//! Elements live in a flat `Vec` in arbitrary order. Insertion is an O(1)
//! push with no per-element allocation; queries and removals scan. With
//! sets capped at `2 * targetLen` (≈ 100–150) elements the scans are a few
//! cache lines, which is why the paper finds this variant has the best
//! single-thread latency (§4.5.1: "the absence of pointer chasing makes
//! swap-set management fast").

use super::NodeSet;

/// A multiset as an unsorted vector.
pub struct ArraySet<V> {
    items: Vec<(u64, V)>,
}

impl<V> Default for ArraySet<V> {
    fn default() -> Self {
        Self { items: Vec::new() }
    }
}

impl<V> ArraySet<V> {
    fn max_index(&self) -> Option<usize> {
        self.items
            .iter()
            .enumerate()
            .max_by_key(|(_, (k, _))| *k)
            .map(|(i, _)| i)
    }

    fn min_index(&self) -> Option<usize> {
        self.items
            .iter()
            .enumerate()
            .min_by_key(|(_, (k, _))| *k)
            .map(|(i, _)| i)
    }
}

impl<V: Send> NodeSet<V> for ArraySet<V> {
    const KIND: &'static str = "array";
    type Arena = ();

    #[inline]
    fn len(&self) -> usize {
        self.items.len()
    }

    fn max_key(&self) -> Option<u64> {
        self.items.iter().map(|&(k, _)| k).max()
    }

    fn min_key(&self) -> Option<u64> {
        self.items.iter().map(|&(k, _)| k).min()
    }

    #[inline]
    fn insert(&mut self, prio: u64, value: V) {
        self.items.push((prio, value));
    }

    fn remove_max(&mut self) -> Option<(u64, V)> {
        let i = self.max_index()?;
        Some(self.items.swap_remove(i))
    }

    fn remove_min(&mut self) -> Option<(u64, V)> {
        let i = self.min_index()?;
        Some(self.items.swap_remove(i))
    }

    fn drain_top(&mut self, n: usize, out: &mut Vec<(u64, V)>) {
        let take = n.min(self.items.len());
        if take == 0 {
            return;
        }
        // One partial ordering pass beats `take` independent scans: move
        // the `take` largest to the tail, then sort just that tail.
        let split = self.items.len() - take;
        if split > 0 {
            self.items
                .select_nth_unstable_by_key(split - 1, |&(k, _)| k);
        }
        let mut tail = self.items.split_off(split);
        tail.sort_unstable_by_key(|&(k, _)| k);
        out.extend(tail);
    }

    fn split_lower_half(&mut self) -> Vec<(u64, V)> {
        let remove = self.items.len() / 2;
        if remove == 0 {
            return Vec::new();
        }
        // Partition so the `remove` smallest occupy the head, then split.
        self.items
            .select_nth_unstable_by_key(remove - 1, |&(k, _)| k);
        let upper = self.items.split_off(remove);
        std::mem::replace(&mut self.items, upper)
    }

    fn drain_all(&mut self, out: &mut Vec<(u64, V)>) {
        out.append(&mut self.items);
    }
}

impl<V> std::fmt::Debug for ArraySet<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: Vec<u64> = self.items.iter().map(|&(k, _)| k).collect();
        f.debug_struct("ArraySet").field("keys", &keys).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_push() {
        let mut s = ArraySet::default();
        s.insert(3, "c");
        s.insert(1, "a");
        s.insert(2, "b");
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_key(), Some(3));
        assert_eq!(s.min_key(), Some(1));
    }

    #[test]
    fn drain_top_with_ties() {
        let mut s = ArraySet::default();
        for (k, v) in [(5u64, 0u64), (5, 1), (3, 2), (5, 3), (1, 4)] {
            s.insert(k, v);
        }
        let mut out = Vec::new();
        s.drain_top(3, &mut out);
        // The three largest are the three 5s, ascending order trivially.
        assert!(out.iter().all(|&(k, _)| k == 5));
        assert_eq!(s.max_key(), Some(3));
    }

    #[test]
    fn split_lower_half_partitions() {
        let mut s = ArraySet::default();
        for k in [9u64, 1, 8, 2, 7, 3] {
            s.insert(k, k);
        }
        let lower = s.split_lower_half();
        let mut low: Vec<u64> = lower.iter().map(|&(k, _)| k).collect();
        low.sort_unstable();
        assert_eq!(low, vec![1, 2, 3]);
        assert_eq!(s.min_key(), Some(7));
    }
}
