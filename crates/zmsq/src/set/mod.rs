//! Per-node element sets.
//!
//! Each `TNode` stores a multiset of `(priority, value)` pairs. The paper
//! evaluates two representations (§4): a **sorted singly linked list**
//! (the default, mirroring the mound) and an **unsorted fixed-capacity
//! array** (the "(array)" curves, trading ordered access for allocation-
//! free inserts and locality). Both are exercised by every benchmark.
//!
//! Sets are *not* thread-safe: the owning `TNode`'s lock serializes all
//! access. Duplicate priorities are allowed.

mod array;
mod deque;
mod list;
mod slab;

pub use array::ArraySet;
pub use deque::DequeSet;
pub use list::ListSet;
pub use slab::SlabSet;

/// The multiset stored in each tree node.
///
/// Implementations must uphold, for all operations:
/// * `len` equals the number of stored pairs;
/// * `max_key`/`min_key` are `None` iff empty;
/// * `remove_max` returns a pair with the largest priority (ties broken
///   arbitrarily), `remove_min` the smallest;
/// * `drain_top(n, out)` removes the `min(n, len)` largest pairs and
///   appends them to `out` in **ascending** priority order (the pool is
///   consumed from the highest index down, so ascending slot order hands
///   out the best elements first);
/// * `split_lower_half` removes and returns the `len / 2` smallest pairs
///   (any order).
pub trait NodeSet<V>: Default + Send {
    /// Short tag used in queue names: `"list"` or `"array"`.
    const KIND: &'static str;

    /// Shared storage arena for set representations that draw node
    /// storage from a queue-wide slab instead of the allocator. Plain
    /// sets use `()`; [`SlabSet`] uses an `Arc<Slab<V>>`.
    type Arena: Send + Sync + Default;

    /// Build the queue-wide arena, pre-sized for `prealloc` elements
    /// (0 = grow on demand). Called once per queue at construction.
    fn new_arena(prealloc: usize) -> Self::Arena {
        let _ = prealloc;
        Default::default()
    }

    /// Attach a node's set to the queue's arena. Called while the node
    /// is still exclusively owned (before it is published into the
    /// tree), so a plain `&mut self` suffices.
    fn attach(&mut self, arena: &Self::Arena) {
        let _ = arena;
    }

    /// Allocation counters for the arena, if it keeps any.
    fn arena_stats(arena: &Self::Arena) -> Option<crate::slab::SlabStats> {
        let _ = arena;
        None
    }

    /// Number of stored pairs.
    fn len(&self) -> usize;

    /// Whether the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest stored priority, or `None` if empty.
    fn max_key(&self) -> Option<u64>;

    /// Smallest stored priority, or `None` if empty.
    fn min_key(&self) -> Option<u64>;

    /// Insert a pair.
    fn insert(&mut self, prio: u64, value: V);

    /// Remove and return a pair with the largest priority.
    fn remove_max(&mut self) -> Option<(u64, V)>;

    /// Remove and return a pair with the smallest priority.
    fn remove_min(&mut self) -> Option<(u64, V)>;

    /// Remove the `min(n, len)` largest pairs, appending them to `out` in
    /// ascending priority order.
    fn drain_top(&mut self, n: usize, out: &mut Vec<(u64, V)>);

    /// Remove and return the `len / 2` smallest pairs.
    fn split_lower_half(&mut self) -> Vec<(u64, V)>;

    /// Remove everything, appending to `out` in arbitrary order.
    fn drain_all(&mut self, out: &mut Vec<(u64, V)>);
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Exercise any NodeSet implementation against the invariants above.
    fn exercise_basic<S: NodeSet<u64>>() {
        let mut s = S::default();
        assert!(s.is_empty());
        assert_eq!(s.max_key(), None);
        assert_eq!(s.min_key(), None);
        assert_eq!(s.remove_max(), None);
        assert_eq!(s.remove_min(), None);

        for k in [5u64, 1, 9, 7, 3] {
            s.insert(k, k * 10);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.max_key(), Some(9));
        assert_eq!(s.min_key(), Some(1));

        assert_eq!(s.remove_max(), Some((9, 90)));
        assert_eq!(s.remove_min(), Some((1, 10)));
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_key(), Some(7));
        assert_eq!(s.min_key(), Some(3));
    }

    fn exercise_duplicates<S: NodeSet<u64>>() {
        let mut s = S::default();
        for i in 0..4 {
            s.insert(42, i);
        }
        s.insert(10, 100);
        s.insert(50, 500);
        assert_eq!(s.len(), 6);
        assert_eq!(s.remove_max(), Some((50, 500)));
        // Four 42s in some order.
        let mut vals = Vec::new();
        for _ in 0..4 {
            let (k, v) = s.remove_max().unwrap();
            assert_eq!(k, 42);
            vals.push(v);
        }
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        assert_eq!(s.remove_max(), Some((10, 100)));
        assert!(s.is_empty());
    }

    fn exercise_drain_top<S: NodeSet<u64>>() {
        let mut s = S::default();
        for k in [4u64, 8, 2, 6, 10] {
            s.insert(k, k);
        }
        let mut out = Vec::new();
        s.drain_top(3, &mut out);
        assert_eq!(out, vec![(6, 6), (8, 8), (10, 10)], "ascending top-3");
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_key(), Some(4));

        // n larger than len drains everything.
        let mut out2 = Vec::new();
        s.drain_top(99, &mut out2);
        assert_eq!(out2, vec![(2, 2), (4, 4)]);
        assert!(s.is_empty());

        // n == 0 is a no-op.
        s.insert(1, 1);
        let mut out3 = Vec::new();
        s.drain_top(0, &mut out3);
        assert!(out3.is_empty());
        assert_eq!(s.len(), 1);
    }

    fn exercise_split<S: NodeSet<u64>>() {
        let mut s = S::default();
        for k in 1..=7u64 {
            s.insert(k, k);
        }
        let lower = s.split_lower_half();
        assert_eq!(lower.len(), 3, "7 / 2 = 3 smallest removed");
        let mut keys: Vec<u64> = lower.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.min_key(), Some(4));
        assert_eq!(s.max_key(), Some(7));

        // Splitting a singleton removes nothing.
        let mut s1 = S::default();
        s1.insert(9, 9);
        assert!(s1.split_lower_half().is_empty());
        assert_eq!(s1.len(), 1);
    }

    fn exercise_drain_all<S: NodeSet<u64>>() {
        let mut s = S::default();
        for k in [3u64, 1, 2] {
            s.insert(k, k);
        }
        let mut out = Vec::new();
        s.drain_all(&mut out);
        assert!(s.is_empty());
        out.sort_unstable();
        assert_eq!(out, vec![(1, 1), (2, 2), (3, 3)]);
    }

    macro_rules! set_suite {
        ($name:ident, $ty:ty) => {
            mod $name {
                use super::*;
                #[test]
                fn basic() {
                    exercise_basic::<$ty>();
                }
                #[test]
                fn duplicates() {
                    exercise_duplicates::<$ty>();
                }
                #[test]
                fn drain_top() {
                    exercise_drain_top::<$ty>();
                }
                #[test]
                fn split() {
                    exercise_split::<$ty>();
                }
                #[test]
                fn drain_all() {
                    exercise_drain_all::<$ty>();
                }
            }
        };
    }

    set_suite!(list_suite, ListSet<u64>);
    set_suite!(array_suite, ArraySet<u64>);
    set_suite!(deque_suite, DequeSet<u64>);
    set_suite!(slab_suite, SlabSet<u64>);

    /// Reference model: a sorted Vec with identical semantics.
    #[derive(Default)]
    struct Model(Vec<u64>); // ascending

    impl Model {
        fn insert(&mut self, k: u64) {
            let pos = self.0.partition_point(|&x| x <= k);
            self.0.insert(pos, k);
        }
        fn remove_max(&mut self) -> Option<u64> {
            self.0.pop()
        }
        fn remove_min(&mut self) -> Option<u64> {
            if self.0.is_empty() {
                None
            } else {
                Some(self.0.remove(0))
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64),
        RemoveMax,
        RemoveMin,
        DrainTop(u8),
        Split,
    }

    /// Weighted op distribution: 3 insert : 2 remove-max : 1 remove-min
    /// : 1 drain-top : 1 split.
    fn random_op(rng: &mut fault::DetRng) -> Op {
        match rng.random_range(0u32..8) {
            0..=2 => Op::Insert(rng.random_range(0u64..100)),
            3..=4 => Op::RemoveMax,
            5 => Op::RemoveMin,
            6 => Op::DrainTop(rng.random_range(0u32..10) as u8),
            _ => Op::Split,
        }
    }

    fn random_ops(rng: &mut fault::DetRng) -> Vec<Op> {
        let len = rng.random_range(1usize..120);
        (0..len).map(|_| random_op(rng)).collect()
    }

    fn run_model<S: NodeSet<u64>>(ops: &[Op]) {
        let mut s = S::default();
        let mut m = Model::default();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    s.insert(*k, *k);
                    m.insert(*k);
                }
                Op::RemoveMax => {
                    assert_eq!(s.remove_max().map(|p| p.0), m.remove_max());
                }
                Op::RemoveMin => {
                    assert_eq!(s.remove_min().map(|p| p.0), m.remove_min());
                }
                Op::DrainTop(n) => {
                    let mut out = Vec::new();
                    s.drain_top(*n as usize, &mut out);
                    let take = (*n as usize).min(m.0.len());
                    let expect: Vec<u64> = m.0.split_off(m.0.len() - take);
                    assert_eq!(
                        out.iter().map(|p| p.0).collect::<Vec<_>>(),
                        expect,
                        "drain_top mismatch"
                    );
                }
                Op::Split => {
                    let lower = s.split_lower_half();
                    let keep = m.0.len() - m.0.len() / 2;
                    let expect: Vec<u64> = m.0.drain(..m.0.len() - keep).collect();
                    let mut got: Vec<u64> = lower.iter().map(|p| p.0).collect();
                    got.sort_unstable();
                    assert_eq!(got, expect, "split_lower_half mismatch");
                }
            }
            assert_eq!(s.len(), m.0.len());
            assert_eq!(s.max_key(), m.0.last().copied());
            assert_eq!(s.min_key(), m.0.first().copied());
        }
    }

    /// Seeded randomized model check: 256 cases of 1..120 ops each.
    /// Failures print the seed and op sequence for exact replay.
    fn check_against_model<S: NodeSet<u64>>(seed: u64) {
        let mut rng = fault::DetRng::seed_from_u64(seed);
        for case in 0..256 {
            let ops = random_ops(&mut rng);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_model::<S>(&ops);
            }));
            if let Err(e) = result {
                panic!("seed {seed:#x} case {case} ops {ops:?}: {e:?}");
            }
        }
    }

    #[test]
    fn list_matches_model() {
        check_against_model::<ListSet<u64>>(0x5E7_11D5);
    }

    #[test]
    fn array_matches_model() {
        check_against_model::<ArraySet<u64>>(0x5E7_22D5);
    }

    #[test]
    fn deque_matches_model() {
        check_against_model::<DequeSet<u64>>(0x5E7_33D5);
    }

    #[test]
    fn slab_matches_model() {
        check_against_model::<SlabSet<u64>>(0x5E7_44D5);
    }
}
