//! Slab-backed sorted set with u32 index links — allocation-free inserts.
//!
//! Semantically identical to [`ListSet`](super::ListSet) (descending
//! sorted singly linked list), but node storage comes from the queue-wide
//! recycling [`Slab`] and links are u32 slot indices instead of
//! `Box` pointers: half the link width, and a freed element's storage is
//! recycled to the next insert rather than returned to the allocator.
//!
//! Sets are accessed only under their `TNode`'s lock, so the fields here
//! are plain values; only the arena itself is shared. `swap_contents`
//! (parent/child set exchange) swaps the whole struct with `ptr::swap`,
//! which is sound precisely because every set in a queue shares one
//! arena — an index means the same slot before and after the swap.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::NodeSet;
use crate::slab::{Slab, SlabStats, NIL};

/// A multiset as a descending sorted list of slab slots linked by index.
pub struct SlabSet<V> {
    /// Lazily self-provisioned when unattached (standalone tests); every
    /// set in a queue shares the queue's arena via [`NodeSet::attach`].
    arena: Option<Arc<Slab<V>>>,
    head: u32,
    len: usize,
}

impl<V> Default for SlabSet<V> {
    fn default() -> Self {
        Self {
            arena: None,
            head: NIL,
            len: 0,
        }
    }
}

impl<V> SlabSet<V> {
    #[inline]
    fn arena(&mut self) -> &Arc<Slab<V>> {
        self.arena.get_or_insert_with(|| Arc::new(Slab::new()))
    }

    #[inline]
    fn prio_of(&self, idx: u32) -> u64 {
        self.arena
            .as_ref()
            .unwrap()
            .slot(idx)
            .meta
            .load(Ordering::Relaxed)
    }

    #[inline]
    fn next_of(&self, idx: u32) -> u32 {
        self.arena
            .as_ref()
            .unwrap()
            .slot(idx)
            .next
            .load(Ordering::Relaxed)
    }

    /// Unlink `idx` (already detached from the list), take its value and
    /// free the slot.
    #[inline]
    fn take(&self, idx: u32) -> (u64, V) {
        let arena = self.arena.as_ref().unwrap();
        let slot = arena.slot(idx);
        let prio = slot.meta.load(Ordering::Relaxed);
        // SAFETY: the slot is live and this set is its exclusive owner
        // (node lock held by the caller of the public method); the value
        // was written by `alloc` and is taken exactly once, here, before
        // the slot is freed.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        arena.free(idx);
        (prio, value)
    }
}

impl<V: Send> NodeSet<V> for SlabSet<V> {
    const KIND: &'static str = "slab";
    type Arena = Arc<Slab<V>>;

    fn new_arena(prealloc: usize) -> Self::Arena {
        Arc::new(Slab::with_capacity(prealloc))
    }

    fn attach(&mut self, arena: &Self::Arena) {
        debug_assert!(self.head == NIL, "attach must precede first insert");
        self.arena = Some(Arc::clone(arena));
    }

    fn arena_stats(arena: &Self::Arena) -> Option<SlabStats> {
        Some(arena.stats())
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn max_key(&self) -> Option<u64> {
        (self.head != NIL).then(|| self.prio_of(self.head))
    }

    fn min_key(&self) -> Option<u64> {
        if self.head == NIL {
            return None;
        }
        let mut cur = self.head;
        loop {
            let next = self.next_of(cur);
            if next == NIL {
                return Some(self.prio_of(cur));
            }
            cur = next;
        }
    }

    fn insert(&mut self, prio: u64, value: V) {
        let idx = self.arena().alloc(prio, value);
        let arena = self.arena.as_ref().unwrap();
        // Walk to the first position whose priority is <= ours
        // (descending order, same walk as ListSet).
        if self.head == NIL || self.prio_of(self.head) <= prio {
            arena.slot(idx).next.store(self.head, Ordering::Relaxed);
            self.head = idx;
        } else {
            let mut prev = self.head;
            loop {
                let next = self.next_of(prev);
                if next == NIL || self.prio_of(next) <= prio {
                    arena.slot(idx).next.store(next, Ordering::Relaxed);
                    arena.slot(prev).next.store(idx, Ordering::Relaxed);
                    break;
                }
                prev = next;
            }
        }
        self.len += 1;
    }

    #[inline]
    fn remove_max(&mut self) -> Option<(u64, V)> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        self.head = self.next_of(idx);
        self.len -= 1;
        Some(self.take(idx))
    }

    fn remove_min(&mut self) -> Option<(u64, V)> {
        if self.head == NIL {
            return None;
        }
        self.len -= 1;
        // Find the last node and its predecessor.
        let (mut prev, mut cur) = (NIL, self.head);
        loop {
            let next = self.next_of(cur);
            if next == NIL {
                break;
            }
            prev = cur;
            cur = next;
        }
        if prev == NIL {
            self.head = NIL;
        } else {
            self.arena
                .as_ref()
                .unwrap()
                .slot(prev)
                .next
                .store(NIL, Ordering::Relaxed);
        }
        Some(self.take(cur))
    }

    fn drain_top(&mut self, n: usize, out: &mut Vec<(u64, V)>) {
        let take = n.min(self.len);
        let start = out.len();
        for _ in 0..take {
            let idx = self.head;
            self.head = self.next_of(idx);
            out.push(self.take(idx));
        }
        self.len -= take;
        // Heads came off in descending order; the contract is ascending.
        out[start..].reverse();
    }

    fn split_lower_half(&mut self) -> Vec<(u64, V)> {
        let remove = self.len / 2;
        if remove == 0 {
            return Vec::new();
        }
        let keep = self.len - remove;
        // Walk to the last kept node and detach its tail.
        let mut cursor = self.head;
        for _ in 1..keep {
            cursor = self.next_of(cursor);
        }
        let mut tail = self.next_of(cursor);
        self.arena
            .as_ref()
            .unwrap()
            .slot(cursor)
            .next
            .store(NIL, Ordering::Relaxed);
        self.len = keep;
        let mut out = Vec::with_capacity(remove);
        while tail != NIL {
            let next = self.next_of(tail);
            out.push(self.take(tail));
            tail = next;
        }
        out
    }

    fn drain_all(&mut self, out: &mut Vec<(u64, V)>) {
        let mut cur = self.head;
        self.head = NIL;
        self.len = 0;
        while cur != NIL {
            let next = self.next_of(cur);
            out.push(self.take(cur));
            cur = next;
        }
    }
}

impl<V> Drop for SlabSet<V> {
    fn drop(&mut self) {
        let mut cur = self.head;
        while cur != NIL {
            let next = self.next_of(cur);
            // Take-and-drop the value, returning the slot to the arena.
            let arena = self.arena.as_ref().unwrap();
            // SAFETY: live slot exclusively owned by this set.
            unsafe { drop((*arena.slot(cur).value.get()).assume_init_read()) };
            arena.free(cur);
            cur = next;
        }
    }
}

impl<V> std::fmt::Debug for SlabSet<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut keys = Vec::new();
        let mut cur = self.head;
        while cur != NIL {
            keys.push(self.prio_of(cur));
            cur = self.next_of(cur);
        }
        f.debug_struct("SlabSet").field("keys", &keys).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_descending_order() {
        let mut s: SlabSet<()> = SlabSet::default();
        for k in [5u64, 2, 8, 8, 1, 9] {
            s.insert(k, ());
        }
        let mut prev = u64::MAX;
        let mut cur = s.head;
        while cur != NIL {
            assert!(s.prio_of(cur) <= prev, "list must be descending");
            prev = s.prio_of(cur);
            cur = s.next_of(cur);
        }
    }

    #[test]
    fn shared_arena_sets_recycle_each_others_slots() {
        let arena: Arc<Slab<u64>> = <SlabSet<u64> as NodeSet<u64>>::new_arena(0);
        let mut a: SlabSet<u64> = SlabSet::default();
        let mut b: SlabSet<u64> = SlabSet::default();
        a.attach(&arena);
        b.attach(&arena);
        for k in 0..32u64 {
            a.insert(k, k);
        }
        let mut out = Vec::new();
        a.drain_all(&mut out);
        assert_eq!(out.len(), 32);
        let before = arena.stats();
        // b's inserts reuse a's freed slots: no growth, all hits.
        for k in 0..32u64 {
            b.insert(k, k);
        }
        let after = arena.stats();
        assert_eq!(after.grows, before.grows, "no chunk growth on reuse");
        assert_eq!(after.hits - before.hits, 32);
        assert_eq!(after.live, 32);
        drop(b);
        assert_eq!(arena.live(), 0, "drop returns every slot");
    }

    #[test]
    fn values_survive_take_paths() {
        let mut s: SlabSet<String> = SlabSet::default();
        for k in [3u64, 1, 4, 1, 5] {
            s.insert(k, format!("v{k}"));
        }
        assert_eq!(s.remove_max(), Some((5, "v5".to_string())));
        assert_eq!(s.remove_min(), Some((1, "v1".to_string())));
        let lower = s.split_lower_half();
        assert_eq!(lower.len(), 1);
        assert_eq!(lower[0].0, 1);
        assert_eq!(s.len(), 2);
    }
}
