//! Operation statistics with striped counters.
//!
//! The evaluation sections rely on internal profiling ("With profiling, we
//! found that dynamic (1:1.5) had the highest percentage of full sets",
//! "only 3% of extractMax() calls access the root", §4.2) — these counters
//! regenerate those observations. A single shared cache line of counters
//! would serialize every operation, so each logical counter is striped
//! across cache-padded slots; reads sum the stripes.
//!
//! The counter itself is [`obs::Counter`], which assigns stripes to
//! threads round-robin from a global ticket (an earlier revision hashed
//! `ThreadId` through `DefaultHasher`, which clusters badly for the
//! sequential ids real programs produce — see the distribution test
//! below). [`StatsSnapshot::to_obs`] exports a snapshot into the shared
//! observability schema for the bench harness's `*.metrics.json`.

/// A monotone counter striped over cache-padded slots. Alias of
/// [`obs::Counter`]; kept under the original name for the queue internals.
pub(crate) use obs::Counter as Striped;

/// All per-queue counters. Fields are incremented with relaxed atomics on
/// thread-striped cache lines; the overhead is a handful of cycles per op.
#[derive(Default)]
pub(crate) struct Stats {
    pub inserts: Striped,
    pub insert_retries: Striped,
    pub forced_inserts: Striped,
    pub min_swap_inserts: Striped,
    pub fast_pool_inserts: Striped,
    pub splits: Striped,
    pub tree_grows: Striped,
    pub extracts: Striped,
    pub pool_hits: Striped,
    pub pool_refills: Striped,
    pub root_extracts: Striped,
    pub swap_downs: Striped,
    pub empty_observed: Striped,
    pub trylock_fails: Striped,
    pub refill_races: Striped,
    pub capacity_hits: Striped,
    pub shed_rejected: Striped,
    pub shed_evicted: Striped,
    pub producer_waits: Striped,
}

/// A point-in-time copy of a queue's operation counters.
///
/// Obtain via [`Zmsq::stats`](crate::Zmsq::stats). Sums are consistent
/// only on a quiescent queue; during concurrent operation they are
/// best-effort (each counter individually monotone and exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Completed `insert` operations.
    pub inserts: u64,
    /// Insert attempts that failed validation and restarted (§4.1).
    pub insert_retries: u64,
    /// Inserts that used the forced non-max path into a deep leaf (§3.2).
    pub forced_inserts: u64,
    /// Inserts that applied the parent-min swap quality optimization.
    pub min_swap_inserts: u64,
    /// Inserts placed directly into the extraction pool (§5 future work;
    /// requires `ZmsqConfig::pool_fast_insert`).
    pub fast_pool_inserts: u64,
    /// Oversized-set splits pushed down to children.
    pub splits: u64,
    /// Tree depth expansions.
    pub tree_grows: u64,
    /// Completed successful `extract_max` operations.
    pub extracts: u64,
    /// Extractions served from the shared pool (the relaxed fast path).
    pub pool_hits: u64,
    /// Pool refills (each implies one root critical section).
    pub pool_refills: u64,
    /// Extractions that entered the root critical section (every strict
    /// extraction; one per refill in relaxed mode).
    pub root_extracts: u64,
    /// Set exchanges performed while restoring the mound invariant.
    pub swap_downs: u64,
    /// `extract_max` calls that observed a truly empty queue.
    pub empty_observed: u64,
    /// Trylock failures that caused an operation restart.
    pub trylock_fails: u64,
    /// Root acquisitions that found the pool already refilled by a
    /// concurrent extractor — direct evidence of ≥ 2 threads racing for
    /// the same refill, and (with `trylock_fails`) the contention signal
    /// the adaptive batch controller feeds on.
    pub refill_races: u64,
    /// Admission attempts that found the queue at capacity (bounded
    /// queues only). Counts *attempts*, not elements: one blocked
    /// producer retrying bumps this on every failed round.
    pub capacity_hits: u64,
    /// Incoming elements dropped at capacity: `ShedPolicy::Reject`
    /// drops via the infallible `insert`, plus `ShedLowest` cases where
    /// the incoming element was itself the lowest candidate.
    pub shed_rejected: u64,
    /// Admitted-then-evicted elements: `ShedPolicy::ShedLowest` removed
    /// them from a deep tree node to make room for higher-priority work.
    pub shed_evicted: u64,
    /// Times a producer entered a capacity wait (`ShedPolicy::Block`
    /// under sustained overload); each round of a blocked insert's
    /// wait-retry loop counts once.
    pub producer_waits: u64,
    /// Slab allocations served by recycling a freed slot (slab-backed
    /// sets only; 0 otherwise). Merged from the arena by
    /// [`Zmsq::stats`](crate::Zmsq::stats), not striped here.
    pub slab_hits: u64,
    /// Slab chunk publications — the only allocator calls a slab-backed
    /// queue makes after warmup. `0` over a measurement window is the
    /// alloc-free-steady-state proof (`ops_latency --assert-alloc-free`).
    pub slab_grows: u64,
}

impl Stats {
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            inserts: self.inserts.sum(),
            insert_retries: self.insert_retries.sum(),
            forced_inserts: self.forced_inserts.sum(),
            min_swap_inserts: self.min_swap_inserts.sum(),
            fast_pool_inserts: self.fast_pool_inserts.sum(),
            splits: self.splits.sum(),
            tree_grows: self.tree_grows.sum(),
            extracts: self.extracts.sum(),
            pool_hits: self.pool_hits.sum(),
            pool_refills: self.pool_refills.sum(),
            root_extracts: self.root_extracts.sum(),
            swap_downs: self.swap_downs.sum(),
            empty_observed: self.empty_observed.sum(),
            trylock_fails: self.trylock_fails.sum(),
            refill_races: self.refill_races.sum(),
            capacity_hits: self.capacity_hits.sum(),
            shed_rejected: self.shed_rejected.sum(),
            shed_evicted: self.shed_evicted.sum(),
            producer_waits: self.producer_waits.sum(),
            slab_hits: 0,
            slab_grows: 0,
        }
    }
}

impl StatsSnapshot {
    /// Accumulate `other` into `self`, field by field. Used by
    /// [`ShardedZmsq`](crate::ShardedZmsq) to fold per-shard counters
    /// into one queue-level view.
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        let StatsSnapshot {
            inserts,
            insert_retries,
            forced_inserts,
            min_swap_inserts,
            fast_pool_inserts,
            splits,
            tree_grows,
            extracts,
            pool_hits,
            pool_refills,
            root_extracts,
            swap_downs,
            empty_observed,
            trylock_fails,
            refill_races,
            capacity_hits,
            shed_rejected,
            shed_evicted,
            producer_waits,
            slab_hits,
            slab_grows,
        } = *other;
        self.inserts += inserts;
        self.insert_retries += insert_retries;
        self.forced_inserts += forced_inserts;
        self.min_swap_inserts += min_swap_inserts;
        self.fast_pool_inserts += fast_pool_inserts;
        self.splits += splits;
        self.tree_grows += tree_grows;
        self.extracts += extracts;
        self.pool_hits += pool_hits;
        self.pool_refills += pool_refills;
        self.root_extracts += root_extracts;
        self.swap_downs += swap_downs;
        self.empty_observed += empty_observed;
        self.trylock_fails += trylock_fails;
        self.refill_races += refill_races;
        self.capacity_hits += capacity_hits;
        self.shed_rejected += shed_rejected;
        self.shed_evicted += shed_evicted;
        self.producer_waits += producer_waits;
        self.slab_hits += slab_hits;
        self.slab_grows += slab_grows;
    }

    /// Total elements shed at capacity, whatever the mechanism.
    pub fn shed_total(&self) -> u64 {
        self.shed_rejected + self.shed_evicted
    }

    /// Fraction of successful extractions that had to touch the root
    /// (§4.2 reports ~3% with `batch = 32`). `root_extracts` counts every
    /// root critical section, strict or refilling.
    pub fn root_access_ratio(&self) -> f64 {
        if self.extracts == 0 {
            return 0.0;
        }
        self.root_extracts as f64 / self.extracts as f64
    }

    /// Export into the shared observability schema under `zmsq.*` names,
    /// including the derived `zmsq.root_access_ratio` the §4.2 recipe in
    /// `EXPERIMENTS.md` reads out of `*.metrics.json`.
    pub fn to_obs(&self) -> obs::Snapshot {
        let mut s = obs::Snapshot::new();
        s.push_counter("zmsq.inserts", self.inserts);
        s.push_counter("zmsq.insert_retries", self.insert_retries);
        s.push_counter("zmsq.forced_inserts", self.forced_inserts);
        s.push_counter("zmsq.min_swap_inserts", self.min_swap_inserts);
        s.push_counter("zmsq.fast_pool_inserts", self.fast_pool_inserts);
        s.push_counter("zmsq.splits", self.splits);
        s.push_counter("zmsq.tree_grows", self.tree_grows);
        s.push_counter("zmsq.extracts", self.extracts);
        s.push_counter("zmsq.pool_hits", self.pool_hits);
        s.push_counter("zmsq.pool_refills", self.pool_refills);
        s.push_counter("zmsq.root_extracts", self.root_extracts);
        s.push_counter("zmsq.swap_downs", self.swap_downs);
        s.push_counter("zmsq.empty_observed", self.empty_observed);
        s.push_counter("zmsq.trylock_fails", self.trylock_fails);
        s.push_counter("zmsq.refill_races", self.refill_races);
        s.push_counter("queue.shed.capacity_hits", self.capacity_hits);
        s.push_counter("queue.shed.rejected", self.shed_rejected);
        s.push_counter("queue.shed.evicted", self.shed_evicted);
        s.push_counter("queue.shed.producer_waits", self.producer_waits);
        s.push_counter("alloc.slab_hits", self.slab_hits);
        s.push_counter("alloc.slab_grows", self.slab_grows);
        if self.inserts + self.shed_rejected > 0 {
            // Shed ratio over *offered* load: sheds / (admitted + refused).
            // Evicted elements were admitted first, so the denominator is
            // inserts (which counted them) plus outright rejections.
            s.push_ratio(
                "queue.shed.ratio",
                self.shed_total() as f64 / (self.inserts + self.shed_rejected) as f64,
            );
        }
        s.push_ratio("zmsq.root_access_ratio", self.root_access_ratio());
        if self.extracts > 0 {
            s.push_ratio(
                "zmsq.pool_hit_ratio",
                self.pool_hits as f64 / self.extracts as f64,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn striped_counts_exactly() {
        let s = Arc::new(Striped::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.sum(), 80_000);
    }

    /// The old `DefaultHasher(ThreadId)` stripe assignment could cluster
    /// many threads onto few stripes; the round-robin ticket guarantees
    /// near-uniform spread. With 4 full rounds of threads over the stripe
    /// count, every stripe must receive work and no stripe may carry more
    /// than a small multiple of its fair share.
    #[test]
    fn many_threads_spread_across_all_stripes() {
        let threads = 4 * obs::STRIPES;
        let s = Arc::new(Striped::default());
        let mut handles = Vec::new();
        for _ in 0..threads {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || s.add(1)));
        }
        for h in handles {
            h.join().unwrap();
        }
        let loads = s.stripe_loads();
        assert_eq!(loads.iter().sum::<u64>(), threads as u64);
        let fair = threads as u64 / obs::STRIPES as u64;
        assert!(loads.iter().all(|&l| l > 0), "stripe starved: {loads:?}");
        // Other test threads in this process also consume ticket numbers,
        // shifting which stripes our threads land on — but round-robin
        // still bounds any stripe's load by fair + (ticket interleavers).
        assert!(
            loads.iter().all(|&l| l <= 3 * fair),
            "stripe overloaded: {loads:?}"
        );
    }

    #[test]
    fn snapshot_reflects_increments() {
        let st = Stats::default();
        st.inserts.add(5);
        st.pool_hits.add(3);
        st.pool_refills.incr();
        st.root_extracts.incr();
        st.extracts.add(4);
        let snap = st.snapshot();
        assert_eq!(snap.inserts, 5);
        assert_eq!(snap.pool_hits, 3);
        assert_eq!(snap.pool_refills, 1);
        assert!((snap.root_access_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn root_ratio_zero_when_idle() {
        assert_eq!(StatsSnapshot::default().root_access_ratio(), 0.0);
    }

    #[test]
    fn shed_counters_export_and_absorb() {
        let st = Stats::default();
        st.inserts.add(90);
        st.capacity_hits.add(25);
        st.shed_rejected.add(10);
        st.shed_evicted.add(5);
        st.producer_waits.add(3);
        let snap = st.snapshot();
        assert_eq!(snap.shed_total(), 15);
        let s = snap.to_obs();
        assert_eq!(s.counter("queue.shed.capacity_hits"), Some(25));
        assert_eq!(s.counter("queue.shed.rejected"), Some(10));
        assert_eq!(s.counter("queue.shed.evicted"), Some(5));
        assert_eq!(s.counter("queue.shed.producer_waits"), Some(3));
        // ratio = 15 / (90 + 10)
        assert!((s.ratio("queue.shed.ratio").unwrap() - 0.15).abs() < 1e-9);
        let mut folded = StatsSnapshot::default();
        folded.absorb(&snap);
        folded.absorb(&snap);
        assert_eq!(folded.shed_rejected, 20);
        assert_eq!(folded.shed_evicted, 10);
        assert_eq!(folded.capacity_hits, 50);
        assert_eq!(folded.producer_waits, 6);
    }

    #[test]
    fn to_obs_exports_counters_and_ratio() {
        let st = Stats::default();
        st.extracts.add(100);
        st.root_extracts.add(3);
        st.pool_hits.add(97);
        let s = st.snapshot().to_obs();
        assert_eq!(s.counter("zmsq.extracts"), Some(100));
        assert_eq!(s.counter("zmsq.root_extracts"), Some(3));
        let r = s.ratio("zmsq.root_access_ratio").unwrap();
        assert!((r - 0.03).abs() < 1e-9);
        assert!((s.ratio("zmsq.pool_hit_ratio").unwrap() - 0.97).abs() < 1e-9);
        // The export must serialize into the shared JSON schema.
        let json = s.to_json();
        assert!(obs::json::parse(&json).is_ok());
    }
}
