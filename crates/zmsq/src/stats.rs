//! Operation statistics with striped counters.
//!
//! The evaluation sections rely on internal profiling ("With profiling, we
//! found that dynamic (1:1.5) had the highest percentage of full sets",
//! "only 3% of extractMax() calls access the root", §4.2) — these counters
//! regenerate those observations. A single shared cache line of counters
//! would serialize every operation, so each logical counter is striped
//! across cache-padded slots indexed by a thread hash; reads sum the
//! stripes.

use std::sync::atomic::{AtomicU64, Ordering};

use zmsq_sync::CachePadded;

const STRIPES: usize = 16;

/// A monotone counter striped over [`STRIPES`] cache lines.
#[derive(Default)]
pub(crate) struct Striped {
    cells: [CachePadded<AtomicU64>; STRIPES],
}

#[inline]
fn stripe_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            // Derive a stable per-thread stripe from the thread id hash.
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            v = (h.finish() as usize) % STRIPES;
            c.set(v);
        }
        v
    })
}

impl Striped {
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[stripe_index()].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// All per-queue counters. Fields are incremented with relaxed atomics on
/// thread-striped cache lines; the overhead is a handful of cycles per op.
#[derive(Default)]
pub(crate) struct Stats {
    pub inserts: Striped,
    pub insert_retries: Striped,
    pub forced_inserts: Striped,
    pub min_swap_inserts: Striped,
    pub fast_pool_inserts: Striped,
    pub splits: Striped,
    pub tree_grows: Striped,
    pub extracts: Striped,
    pub pool_hits: Striped,
    pub pool_refills: Striped,
    pub root_extracts: Striped,
    pub swap_downs: Striped,
    pub empty_observed: Striped,
    pub trylock_fails: Striped,
}

/// A point-in-time copy of a queue's operation counters.
///
/// Obtain via [`Zmsq::stats`](crate::Zmsq::stats). Sums are consistent
/// only on a quiescent queue; during concurrent operation they are
/// best-effort (each counter individually monotone and exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Completed `insert` operations.
    pub inserts: u64,
    /// Insert attempts that failed validation and restarted (§4.1).
    pub insert_retries: u64,
    /// Inserts that used the forced non-max path into a deep leaf (§3.2).
    pub forced_inserts: u64,
    /// Inserts that applied the parent-min swap quality optimization.
    pub min_swap_inserts: u64,
    /// Inserts placed directly into the extraction pool (§5 future work;
    /// requires `ZmsqConfig::pool_fast_insert`).
    pub fast_pool_inserts: u64,
    /// Oversized-set splits pushed down to children.
    pub splits: u64,
    /// Tree depth expansions.
    pub tree_grows: u64,
    /// Completed successful `extract_max` operations.
    pub extracts: u64,
    /// Extractions served from the shared pool (the relaxed fast path).
    pub pool_hits: u64,
    /// Pool refills (each implies one root critical section).
    pub pool_refills: u64,
    /// Extractions that entered the root critical section (every strict
    /// extraction; one per refill in relaxed mode).
    pub root_extracts: u64,
    /// Set exchanges performed while restoring the mound invariant.
    pub swap_downs: u64,
    /// `extract_max` calls that observed a truly empty queue.
    pub empty_observed: u64,
    /// Trylock failures that caused an operation restart.
    pub trylock_fails: u64,
}

impl Stats {
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            inserts: self.inserts.sum(),
            insert_retries: self.insert_retries.sum(),
            forced_inserts: self.forced_inserts.sum(),
            min_swap_inserts: self.min_swap_inserts.sum(),
            fast_pool_inserts: self.fast_pool_inserts.sum(),
            splits: self.splits.sum(),
            tree_grows: self.tree_grows.sum(),
            extracts: self.extracts.sum(),
            pool_hits: self.pool_hits.sum(),
            pool_refills: self.pool_refills.sum(),
            root_extracts: self.root_extracts.sum(),
            swap_downs: self.swap_downs.sum(),
            empty_observed: self.empty_observed.sum(),
            trylock_fails: self.trylock_fails.sum(),
        }
    }
}

impl StatsSnapshot {
    /// Fraction of successful extractions that had to touch the root
    /// (§4.2 reports ~3% with `batch = 32`). `root_extracts` counts every
    /// root critical section, strict or refilling.
    pub fn root_access_ratio(&self) -> f64 {
        if self.extracts == 0 {
            return 0.0;
        }
        self.root_extracts as f64 / self.extracts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn striped_counts_exactly() {
        let s = Arc::new(Striped::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.sum(), 80_000);
    }

    #[test]
    fn snapshot_reflects_increments() {
        let st = Stats::default();
        st.inserts.add(5);
        st.pool_hits.add(3);
        st.pool_refills.incr();
        st.root_extracts.incr();
        st.extracts.add(4);
        let snap = st.snapshot();
        assert_eq!(snap.inserts, 5);
        assert_eq!(snap.pool_hits, 3);
        assert_eq!(snap.pool_refills, 1);
        assert!((snap.root_access_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn root_ratio_zero_when_idle() {
        assert_eq!(StatsSnapshot::default().root_access_ratio(), 0.0);
    }
}
