//! Chunked, lock-free slab of node storage (ROADMAP open item 2).
//!
//! The paper's default linked-list sets pay one heap allocation per
//! inserted element — the k-LSM's block arrays and the coordination-free
//! *No Cords Attached* designs avoid exactly that by recycling fixed
//! storage. This module supplies the storage layer: a [`Slab`] hands out
//! **u32 indices** into chunked, never-moving slot arrays, so set links
//! are 4-byte indices instead of 8-byte pointers (cache density on the
//! tree walk) and steady-state operation touches the allocator zero
//! times (proven by the `alloc.slab_{hits,grows}` counter pair and the
//! `ops_latency --assert` recipe in EXPERIMENTS.md).
//!
//! # Layout
//!
//! Slots live in geometrically growing chunks: chunk `c` holds
//! `BASE << c` slots, so 24 chunks cover the entire u32 index space and
//! a slot's address is two shifts away from its index. Chunks are
//! allocated at most once, published with a CAS, and never freed until
//! the slab drops — an index, once handed out, names the same memory
//! forever (the property the tree relies on for lock-free walks).
//!
//! # Recycling and the retire-epoch rule
//!
//! Freed slots pass through a two-stage recycler, both stages
//! tag-counted Treiber stacks (the tag in the upper 32 bits of the head
//! makes the pop CAS ABA-safe):
//!
//! 1. [`Slab::free`] stamps the slot with the current
//!    [`smr::ebr::global_epoch`] and pushes it onto the **quarantine**
//!    stack.
//! 2. When the **ready** stack runs dry, the allocating thread swaps the
//!    quarantine out wholesale and splices every slot whose stamp is
//!    strictly below [`smr::ebr::reclaim_bound`] onto the ready stack —
//!    the same `stamp < bound` rule the EBR collector applies to
//!    deferred closures. A slot retired while some thread was pinned is
//!    therefore never reused until that critical section ends.
//!
//! The queue's own set operations run under node locks and never hold an
//! EBR pin, so in ZMSQ the quarantine drains on the next allocation; the
//! epoch gate is defense-in-depth for callers that *do* traverse slots
//! under a pin, plus a second ABA shield behind the tag counter.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

use crate::stats::Striped;

/// Slots in chunk 0; chunk `c` holds `BASE << c`.
const BASE: usize = 256;
/// Chunk count: `256 * (2^24 - 1) = 2^32 - 256` slots, the whole u32
/// index space short of the sentinel range.
const NUM_CHUNKS: usize = 24;
/// Null index (no chunk ever grows far enough to hand it out).
pub(crate) const NIL: u32 = u32::MAX;
/// Total addressable slots.
const MAX_SLOTS: u64 = (BASE as u64) * ((1 << NUM_CHUNKS) - 1);
/// Low half of a packed list head: the index.
const IDX_MASK: u64 = u32::MAX as u64;

/// One slot of storage.
///
/// `next` is the u32 link: a set link while the slot is live, a
/// free-list link while it sits on the ready or quarantine stack.
/// `meta` is the element's priority while live, the retire epoch while
/// quarantined. Both are atomics for the benefit of the lock-free
/// recycler (a Treiber pop reads `next` of a slot it does not yet own);
/// live-slot accesses are all `Relaxed`, ordered by the owning node's
/// lock.
pub(crate) struct Slot<V> {
    pub(crate) next: AtomicU32,
    pub(crate) meta: AtomicU64,
    pub(crate) value: UnsafeCell<MaybeUninit<V>>,
}

impl<V> Slot<V> {
    fn new() -> Self {
        Self {
            next: AtomicU32::new(NIL),
            meta: AtomicU64::new(0),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

/// Allocation counters for a [`Slab`], snapshotted by
/// [`Slab::stats`] and surfaced as the `alloc.slab_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Allocations served by recycling a freed slot (no allocator call).
    pub hits: u64,
    /// Chunk publications — the only events that touch the system
    /// allocator after construction. Zero after warmup is the
    /// alloc-free-steady-state proof.
    pub grows: u64,
    /// Total slot allocations.
    pub allocs: u64,
    /// Total slot frees.
    pub frees: u64,
    /// Slots currently live (`allocs - frees`).
    pub live: u64,
}

/// A chunked, lock-free slab of `(priority, value)` node storage with a
/// Treiber free-list recycler gated on the EBR epoch (module docs).
pub struct Slab<V> {
    chunks: [AtomicPtr<Slot<V>>; NUM_CHUNKS],
    /// Next never-used index. u64 so a torn race past `MAX_SLOTS` cannot
    /// wrap into valid indices.
    bump: AtomicU64,
    /// Recycled slots ready for reuse: `(tag << 32) | head_idx`.
    ready: AtomicU64,
    /// Freed slots awaiting their retire epoch: `(tag << 32) | head_idx`.
    quarantine: AtomicU64,
    hits: Striped,
    grows: Striped,
    allocs: Striped,
    frees: Striped,
}

// SAFETY: the slab hands out indices; slot *values* are only accessed by
// the slot's current exclusive owner (the allocating thread before the
// index is published, the set holder under its node lock, the freeing
// thread after unlinking). All shared state is atomic, and ownership
// handoffs ride the Release/Acquire pairs of the list CASes (or the node
// locks above us). V crosses threads by value, hence `V: Send`.
unsafe impl<V: Send> Send for Slab<V> {}
unsafe impl<V: Send> Sync for Slab<V> {}

impl<V> Default for Slab<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Slab<V> {
    /// An empty slab; the first allocation publishes chunk 0.
    pub fn new() -> Self {
        Self {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            bump: AtomicU64::new(0),
            ready: AtomicU64::new(NIL as u64),
            quarantine: AtomicU64::new(NIL as u64),
            hits: Striped::default(),
            grows: Striped::default(),
            allocs: Striped::default(),
            frees: Striped::default(),
        }
    }

    /// A slab with chunks covering at least `n` slots pre-published, so
    /// the first `n` live elements never touch the allocator (the
    /// [`Zmsq::bounded`](crate::Zmsq::bounded) construction).
    /// Pre-publication does not count as growth in [`SlabStats::grows`].
    pub fn with_capacity(n: usize) -> Self {
        let slab = Self::new();
        let mut covered = 0usize;
        for c in 0..NUM_CHUNKS {
            if covered >= n {
                break;
            }
            slab.chunks[c].store(Self::alloc_chunk(c), Ordering::Relaxed);
            covered += BASE << c;
        }
        slab
    }

    /// Chunk and in-chunk offset of a global index.
    #[inline]
    fn locate(idx: u32) -> (usize, usize) {
        // Chunk sizes are BASE << c, so index g falls in chunk
        // floor(log2(g / BASE + 1)), at offset g - (2^c - 1) * BASE.
        let adj = (idx as u64 >> 8) + 1;
        let c = (63 - adj.leading_zeros()) as usize;
        let off = idx as usize - (((1usize << c) - 1) * BASE);
        (c, off)
    }

    fn alloc_chunk(c: usize) -> *mut Slot<V> {
        let n = BASE << c;
        let mut slots: Vec<Slot<V>> = Vec::with_capacity(n);
        slots.resize_with(n, Slot::new);
        Box::into_raw(slots.into_boxed_slice()).cast()
    }

    /// Borrow the slot at `idx`. The chunk must have been published,
    /// which holds for every index previously returned by [`alloc`]
    /// (publication happens-before the index escapes).
    ///
    /// [`alloc`]: Self::alloc
    #[inline]
    pub(crate) fn slot(&self, idx: u32) -> &Slot<V> {
        let (c, off) = Self::locate(idx);
        let base = self.chunks[c].load(Ordering::Acquire);
        debug_assert!(!base.is_null(), "slot {idx}: chunk {c} not published");
        // SAFETY: published chunks are never freed until Drop and `off`
        // is within the chunk by construction of `locate`.
        unsafe { &*base.add(off) }
    }

    /// Allocate a slot holding `(prio, value)`, preferring recycled
    /// storage; returns its index. The caller owns the slot exclusively
    /// until it frees it (directly or by publishing it into a structure
    /// with its own ownership discipline).
    pub fn alloc(&self, prio: u64, value: V) -> u32 {
        self.allocs.incr();
        let idx = match self.pop_recycled() {
            Some(idx) => {
                self.hits.incr();
                idx
            }
            None => self.bump_alloc(),
        };
        let slot = self.slot(idx);
        slot.meta.store(prio, Ordering::Relaxed);
        // SAFETY: exclusive owner of a just-allocated slot; prior value
        // (if any) was taken by the freeing owner, so plain write.
        unsafe { (*slot.value.get()).write(value) };
        idx
    }

    /// Move a slot's `(prio, value)` out, in preparation for
    /// [`free`](Self::free). The caller must own the slot (it came from
    /// [`alloc`](Self::alloc) and was not freed since) and must call
    /// this at most once per ownership: the value is moved, so a second
    /// `take` would duplicate it — the same ownership contract `free`
    /// carries, enforced by the caller's structure, not the slab.
    pub fn take(&self, idx: u32) -> (u64, V) {
        let slot = self.slot(idx);
        let prio = slot.meta.load(Ordering::Relaxed);
        // SAFETY: exclusive owner (contract above); the value was
        // written by `alloc` and not taken since.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        (prio, value)
    }

    /// Retire a slot. The caller must have unlinked it and taken its
    /// value out (the slab never drops values); the slot becomes
    /// reusable once the current epoch passes (module docs).
    pub fn free(&self, idx: u32) {
        self.frees.incr();
        let slot = self.slot(idx);
        slot.meta.store(smr::ebr::global_epoch(), Ordering::Relaxed);
        self.push(&self.quarantine, idx);
    }

    /// Pop a ready slot, migrating ripe quarantined slots on a miss.
    fn pop_recycled(&self) -> Option<u32> {
        if let Some(idx) = self.pop(&self.ready) {
            return Some(idx);
        }
        if self.migrate_quarantine() {
            return self.pop(&self.ready);
        }
        None
    }

    /// Hand out a never-used index, publishing its chunk if this thread
    /// gets there first.
    fn bump_alloc(&self) -> u32 {
        let g = self.bump.fetch_add(1, Ordering::Relaxed);
        assert!(g < MAX_SLOTS, "slab exhausted ({MAX_SLOTS} slots)");
        let idx = g as u32;
        let (c, _) = Self::locate(idx);
        if self.chunks[c].load(Ordering::Acquire).is_null() {
            let fresh = Self::alloc_chunk(c);
            match self.chunks[c].compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => self.grows.incr(),
                // Another thread published the chunk first.
                // SAFETY: `fresh` never escaped this thread.
                Err(_) => unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        fresh,
                        BASE << c,
                    )));
                },
            }
        }
        idx
    }

    /// Tagged-Treiber pop. Reading `next` of a slot we do not own is the
    /// classic ABA window — the tag in the upper head bits fails the CAS
    /// if the stack changed underneath us, and the epoch quarantine keeps
    /// the window short. `slab.free-pop` lets the det harness schedule a
    /// full free/realloc cycle inside the window.
    fn pop(&self, head: &AtomicU64) -> Option<u32> {
        let mut cur = head.load(Ordering::Acquire);
        loop {
            let idx = (cur & IDX_MASK) as u32;
            if idx == NIL {
                return None;
            }
            let next = self.slot(idx).next.load(Ordering::Relaxed);
            det::det_point!("slab.free-pop");
            let new = ((cur >> 32).wrapping_add(1) << 32) | next as u64;
            match head.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(idx),
                Err(c) => cur = c,
            }
        }
    }

    /// Tagged-Treiber push of a single slot.
    fn push(&self, head: &AtomicU64, idx: u32) {
        let slot = self.slot(idx);
        let mut cur = head.load(Ordering::Relaxed);
        loop {
            slot.next.store((cur & IDX_MASK) as u32, Ordering::Relaxed);
            let new = ((cur >> 32).wrapping_add(1) << 32) | idx as u64;
            match head.compare_exchange_weak(cur, new, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Splice a privately linked chain (`chain_head ..= chain_tail`)
    /// onto `head` with one CAS.
    fn splice(&self, head: &AtomicU64, chain_head: u32, chain_tail: u32) {
        let tail = self.slot(chain_tail);
        let mut cur = head.load(Ordering::Relaxed);
        loop {
            tail.next.store((cur & IDX_MASK) as u32, Ordering::Relaxed);
            let new = ((cur >> 32).wrapping_add(1) << 32) | chain_head as u64;
            match head.compare_exchange_weak(cur, new, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Swap the quarantine out wholesale and move every slot whose
    /// retire stamp is strictly below the EBR reclaim bound onto the
    /// ready stack; unripe slots go back to quarantine. Returns whether
    /// anything became ready.
    fn migrate_quarantine(&self) -> bool {
        let mut cur = self.quarantine.load(Ordering::Acquire);
        loop {
            if (cur & IDX_MASK) as u32 == NIL {
                return false;
            }
            let emptied = ((cur >> 32).wrapping_add(1) << 32) | NIL as u64;
            match self.quarantine.compare_exchange_weak(
                cur,
                emptied,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        // The chain is now exclusively ours.
        let bound = smr::ebr::reclaim_bound();
        let mut walk = (cur & IDX_MASK) as u32;
        let (mut ripe_head, mut ripe_tail) = (NIL, NIL);
        while walk != NIL {
            let slot = self.slot(walk);
            let next = slot.next.load(Ordering::Relaxed);
            if slot.meta.load(Ordering::Relaxed) < bound {
                slot.next.store(ripe_head, Ordering::Relaxed);
                if ripe_head == NIL {
                    ripe_tail = walk;
                }
                ripe_head = walk;
            } else {
                // Still covered by a pinned critical section: back into
                // quarantine for a later pass.
                self.push(&self.quarantine, walk);
            }
            walk = next;
        }
        if ripe_head == NIL {
            return false;
        }
        self.splice(&self.ready, ripe_head, ripe_tail);
        true
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> SlabStats {
        let allocs = self.allocs.sum();
        let frees = self.frees.sum();
        SlabStats {
            hits: self.hits.sum(),
            grows: self.grows.sum(),
            allocs,
            frees,
            live: allocs.saturating_sub(frees),
        }
    }

    /// Slots currently live (`allocs - frees`); exact at quiescence.
    pub fn live(&self) -> u64 {
        self.stats().live
    }
}

impl<V> Drop for Slab<V> {
    fn drop(&mut self) {
        for (c, chunk) in self.chunks.iter_mut().enumerate() {
            let base = *chunk.get_mut();
            if base.is_null() {
                continue;
            }
            // SAFETY: published chunks come from `alloc_chunk`'s boxed
            // slice of exactly `BASE << c` slots, freed exactly once
            // here. Values are MaybeUninit (no drop glue): every live V
            // was taken by its owning set before the slab can drop.
            unsafe {
                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                    base,
                    BASE << c,
                )));
            }
        }
    }
}

impl<V> std::fmt::Debug for Slab<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Slab")
            .field("live", &s.live)
            .field("hits", &s.hits)
            .field("grows", &s.grows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// EBR epoch/pin state is process-global; tests that assert on the
    /// quarantine gate must not overlap other pinning tests.
    fn ebr_serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn take(slab: &Slab<u64>, idx: u32) -> u64 {
        // SAFETY: test is the exclusive owner of its live slots.
        let v = unsafe { (*slab.slot(idx).value.get()).assume_init_read() };
        slab.free(idx);
        v
    }

    #[test]
    fn locate_maps_chunk_boundaries() {
        assert_eq!(Slab::<u64>::locate(0), (0, 0));
        assert_eq!(Slab::<u64>::locate(255), (0, 255));
        assert_eq!(Slab::<u64>::locate(256), (1, 0));
        assert_eq!(Slab::<u64>::locate(767), (1, 511));
        assert_eq!(Slab::<u64>::locate(768), (2, 0));
        assert_eq!(Slab::<u64>::locate(768 + 1024), (3, 0));
        // The deepest addressable index lands at the end of the last chunk.
        let last = (MAX_SLOTS - 1) as u32;
        let (c, off) = Slab::<u64>::locate(last);
        assert_eq!(c, NUM_CHUNKS - 1);
        assert_eq!(off, (BASE << c) - 1);
    }

    #[test]
    fn alloc_roundtrips_prio_and_value() {
        let slab: Slab<u64> = Slab::new();
        let a = slab.alloc(7, 70);
        let b = slab.alloc(9, 90);
        assert_ne!(a, b);
        assert_eq!(slab.slot(a).meta.load(Ordering::Relaxed), 7);
        assert_eq!(slab.slot(b).meta.load(Ordering::Relaxed), 9);
        assert_eq!(take(&slab, a), 70);
        assert_eq!(take(&slab, b), 90);
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn freed_slots_recycle_without_growth() {
        let _g = ebr_serial();
        let slab: Slab<u64> = Slab::new();
        let first: Vec<u32> = (0..8).map(|i| slab.alloc(i, i)).collect();
        let grows_before = slab.stats().grows;
        for &idx in &first {
            let _ = take(&slab, idx);
        }
        // With no thread pinned the quarantine is immediately ripe.
        let second: Vec<u32> = (0..8).map(|i| slab.alloc(i, i)).collect();
        let s = slab.stats();
        assert_eq!(s.grows, grows_before, "recycling must not grow");
        assert_eq!(s.hits, 8, "all eight came from the free list");
        let mut reused: Vec<u32> = second.clone();
        reused.sort_unstable();
        let mut orig = first.clone();
        orig.sort_unstable();
        assert_eq!(reused, orig, "exactly the freed slots were reused");
    }

    #[test]
    fn with_capacity_prepublishes_chunks() {
        let slab: Slab<u64> = Slab::with_capacity(300);
        // 300 > 256 needs chunks 0 and 1 = 768 slots.
        let idxs: Vec<u32> = (0..768).map(|i| slab.alloc(i, i)).collect();
        assert_eq!(slab.stats().grows, 0, "pre-published chunks never grow");
        assert_eq!(slab.live(), 768);
        for idx in idxs {
            let _ = take(&slab, idx);
        }
    }

    #[test]
    fn pinned_epoch_defers_reuse() {
        let _g = ebr_serial();
        let slab: Slab<u64> = Slab::new();
        let idx = slab.alloc(1, 1);
        let pin = smr::ebr::pin();
        let _ = take(&slab, idx); // quarantined at the pinned epoch
        let other = slab.alloc(2, 2);
        assert_ne!(
            other, idx,
            "slot freed under a live pin must not be recycled"
        );
        assert_eq!(slab.stats().hits, 0);
        drop(pin);
        // Bound can lag one migration attempt behind a pin storm from
        // concurrent tests; poll briefly.
        let mut reused = slab.alloc(3, 3);
        for _ in 0..1_000 {
            if reused == idx {
                break;
            }
            let _ = take(&slab, reused);
            std::thread::yield_now();
            reused = slab.alloc(3, 3);
        }
        assert_eq!(reused, idx, "slot reusable once the pin ended");
        let _ = take(&slab, reused);
        let _ = take(&slab, other);
    }

    #[test]
    fn stats_live_tracks_alloc_minus_free() {
        let slab: Slab<u64> = Slab::new();
        let mut held = Vec::new();
        for i in 0..100u64 {
            held.push(slab.alloc(i, i));
            if i % 3 == 0 {
                let idx = held.swap_remove((i as usize * 7) % held.len());
                let _ = take(&slab, idx);
            }
        }
        let s = slab.stats();
        assert_eq!(s.live, held.len() as u64);
        assert_eq!(s.allocs - s.frees, s.live);
        for idx in held {
            let _ = take(&slab, idx);
        }
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn concurrent_alloc_free_conserves_slots() {
        let _g = ebr_serial();
        use std::sync::Arc;
        let slab: Arc<Slab<u64>> = Arc::new(Slab::new());
        let threads = 4;
        let per = if cfg!(miri) { 40 } else { 2_000 };
        let mut handles = Vec::new();
        for t in 0..threads {
            let slab = Arc::clone(&slab);
            handles.push(std::thread::spawn(move || {
                let mut held: Vec<u32> = Vec::new();
                for i in 0..per {
                    let tagged = ((t as u64) << 32) | i as u64;
                    held.push(slab.alloc(i as u64, tagged));
                    if i % 2 == 1 {
                        let idx = held.swap_remove(i % held.len());
                        // SAFETY: this thread owns every index in `held`.
                        let v = unsafe { (*slab.slot(idx).value.get()).assume_init_read() };
                        assert_eq!(v >> 32, t as u64, "slot value crossed owners");
                        slab.free(idx);
                    }
                }
                for idx in held {
                    // SAFETY: owned.
                    let v = unsafe { (*slab.slot(idx).value.get()).assume_init_read() };
                    assert_eq!(v >> 32, t as u64);
                    slab.free(idx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = slab.stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.allocs, (threads * per) as u64);
        assert_eq!(s.frees, s.allocs);
    }
}
