//! Tree nodes (§3.1).
//!
//! A `TNode` couples a lock-protected element set with lock-free-readable
//! cached metadata: "To reduce latency and synchronization, a TNode caches
//! its set's min and max values, as well as its count of elements, in
//! atomic variables that are only updated while holding lock."
//!
//! The cached fields use `Relaxed` ordering throughout: every decision
//! based on an optimistic read is re-validated under the node's lock, and
//! the lock's acquire/release fences order the set data itself. Torn
//! (mutually inconsistent) reads of `max`/`count` can only send an
//! operation down a path whose validation then fails and restarts.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use zmsq_sync::RawTryLock;

use crate::set::NodeSet;

/// Sentinel stored in the `max` cache when the set is empty.
const EMPTY_MAX: u64 = 0;
/// Sentinel stored in the `min` cache when the set is empty.
const EMPTY_MIN: u64 = u64::MAX;

/// A node of the ZMSQ tree: a lock, a set, and cached set metadata.
///
/// Alignment pads each node to its own cache line pair so that lock and
/// metadata traffic on one node never false-shares with a sibling in the
/// same level array.
#[repr(align(128))]
pub(crate) struct TNode<V, S, L> {
    lock: L,
    max: AtomicU64,
    min: AtomicU64,
    count: AtomicU32,
    set: UnsafeCell<S>,
    _values: PhantomData<V>,
}

// SAFETY: the `UnsafeCell<S>` is only accessed through `set_mut`, whose
// contract requires holding `lock`; everything else is atomic.
unsafe impl<V: Send, S: Send, L: Send + Sync> Sync for TNode<V, S, L> {}
unsafe impl<V: Send, S: Send, L: Send> Send for TNode<V, S, L> {}

impl<V, S: NodeSet<V>, L: RawTryLock> TNode<V, S, L> {
    pub fn new() -> Self {
        Self {
            lock: L::default(),
            max: AtomicU64::new(EMPTY_MAX),
            min: AtomicU64::new(EMPTY_MIN),
            count: AtomicU32::new(0),
            set: UnsafeCell::new(S::default()),
            _values: PhantomData,
        }
    }

    /// Attach this node's set to the queue-wide arena. Safe (no lock
    /// needed) because `&mut self` proves exclusive ownership — called
    /// only while a freshly allocated level is still private to the
    /// growing thread.
    pub fn attach_arena(&mut self, arena: &S::Arena) {
        self.set.get_mut().attach(arena);
    }

    // ---- lock ----

    #[inline]
    pub fn lock(&self) {
        self.lock.lock();
    }

    #[inline]
    pub fn try_lock(&self) -> bool {
        self.lock.try_lock()
    }

    #[inline]
    pub fn unlock(&self) {
        self.lock.unlock();
    }

    // ---- optimistic metadata reads (no lock required) ----

    /// Cached max priority; `None` if the set is (cached as) empty.
    ///
    /// `Option` ordering gives empty nodes −∞ semantics: `None < Some(0)`,
    /// which the invariant machinery relies on (an empty node compares
    /// below every element, so empty parents are never left above
    /// nonempty children).
    #[inline]
    pub fn max_key(&self) -> Option<u64> {
        if self.count.load(Ordering::Relaxed) == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Cached min priority; `None` if empty.
    #[inline]
    pub fn min_key(&self) -> Option<u64> {
        if self.count.load(Ordering::Relaxed) == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Cached element count.
    #[inline]
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed) as usize
    }

    // ---- set access (lock required) ----

    /// Access the set.
    ///
    /// # Safety
    ///
    /// The caller must hold this node's lock. The returned reference must
    /// not outlive the lock tenure, and [`TNode::refresh_cache`] must be
    /// called before unlocking if the set was mutated.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn set_mut(&self) -> &mut S {
        // SAFETY: exclusive access guaranteed by the lock (caller contract).
        unsafe { &mut *self.set.get() }
    }

    /// Recompute the cached `max`/`min`/`count` from the set.
    ///
    /// # Safety
    ///
    /// The caller must hold this node's lock.
    pub unsafe fn refresh_cache(&self) {
        // SAFETY: caller holds the lock.
        let set = unsafe { &*self.set.get() };
        self.count.store(set.len() as u32, Ordering::Relaxed);
        self.max
            .store(set.max_key().unwrap_or(EMPTY_MAX), Ordering::Relaxed);
        self.min
            .store(set.min_key().unwrap_or(EMPTY_MIN), Ordering::Relaxed);
    }

    /// Cheaper cache update for the common insert case: one element of
    /// priority `prio` was added and nothing removed.
    ///
    /// # Safety
    ///
    /// The caller must hold this node's lock and have just inserted
    /// exactly one element with priority `prio`.
    pub unsafe fn cache_after_insert(&self, prio: u64) {
        let n = self.count.load(Ordering::Relaxed);
        if n == 0 {
            self.max.store(prio, Ordering::Relaxed);
            self.min.store(prio, Ordering::Relaxed);
        } else {
            if prio > self.max.load(Ordering::Relaxed) {
                self.max.store(prio, Ordering::Relaxed);
            }
            if prio < self.min.load(Ordering::Relaxed) {
                self.min.store(prio, Ordering::Relaxed);
            }
        }
        self.count.store(n + 1, Ordering::Relaxed);
    }

    /// Swap this node's set and cached metadata with another node's.
    ///
    /// # Safety
    ///
    /// The caller must hold **both** locks.
    pub unsafe fn swap_contents(&self, other: &Self) {
        // SAFETY: both locks held (caller contract); the two cells are
        // distinct (`self` and `other` are different nodes — enforced by
        // the tree's parent/child call sites).
        unsafe {
            std::ptr::swap(self.set.get(), other.set.get());
        }
        let (am, bm) = (
            self.max.load(Ordering::Relaxed),
            other.max.load(Ordering::Relaxed),
        );
        self.max.store(bm, Ordering::Relaxed);
        other.max.store(am, Ordering::Relaxed);
        let (an, bn) = (
            self.min.load(Ordering::Relaxed),
            other.min.load(Ordering::Relaxed),
        );
        self.min.store(bn, Ordering::Relaxed);
        other.min.store(an, Ordering::Relaxed);
        let (ac, bc) = (
            self.count.load(Ordering::Relaxed),
            other.count.load(Ordering::Relaxed),
        );
        self.count.store(bc, Ordering::Relaxed);
        other.count.store(ac, Ordering::Relaxed);
    }
}

impl<V, S, L> std::fmt::Debug for TNode<V, S, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TNode")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .field("min", &self.min.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::ListSet;
    use zmsq_sync::TatasLock;

    type Node = TNode<u64, ListSet<u64>, TatasLock>;

    #[test]
    fn empty_node_has_none_keys() {
        let n = Node::new();
        assert_eq!(n.max_key(), None);
        assert_eq!(n.min_key(), None);
        assert_eq!(n.count(), 0);
        // None sorts below every Some — the −∞ property.
        assert!(n.max_key() < Some(0));
    }

    #[test]
    fn cache_tracks_set() {
        let n = Node::new();
        n.lock();
        // SAFETY: lock held.
        unsafe {
            let set = n.set_mut();
            set.insert(5, 5);
            set.insert(9, 9);
            set.insert(2, 2);
            n.refresh_cache();
        }
        n.unlock();
        assert_eq!(n.max_key(), Some(9));
        assert_eq!(n.min_key(), Some(2));
        assert_eq!(n.count(), 3);
    }

    #[test]
    fn incremental_cache_after_insert() {
        let n = Node::new();
        n.lock();
        unsafe {
            n.set_mut().insert(5, 5);
            n.cache_after_insert(5);
            n.set_mut().insert(9, 9);
            n.cache_after_insert(9);
            n.set_mut().insert(2, 2);
            n.cache_after_insert(2);
        }
        n.unlock();
        assert_eq!(n.max_key(), Some(9));
        assert_eq!(n.min_key(), Some(2));
        assert_eq!(n.count(), 3);
    }

    #[test]
    fn swap_contents_exchanges_everything() {
        let a = Node::new();
        let b = Node::new();
        a.lock();
        b.lock();
        unsafe {
            a.set_mut().insert(10, 10);
            a.refresh_cache();
            b.set_mut().insert(7, 7);
            b.set_mut().insert(3, 3);
            b.refresh_cache();
            a.swap_contents(&b);
        }
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_key(), Some(7));
        assert_eq!(a.min_key(), Some(3));
        assert_eq!(b.count(), 1);
        assert_eq!(b.max_key(), Some(10));
        unsafe {
            assert_eq!(a.set_mut().remove_max(), Some((7, 7)));
        }
        a.unlock();
        b.unlock();
    }

    #[test]
    fn node_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<Node>() % 128, 0);
    }
}
