//! # ZMSQ — a practical, scalable, relaxed concurrent priority queue
//!
//! A from-scratch Rust implementation of the data structure introduced in
//! *"A Practical, Scalable, Relaxed Priority Queue"* (Zhou, Michael, Spear —
//! ICPP 2019), published in C++ as Folly's `RelaxedConcurrentPriorityQueue`.
//!
//! ZMSQ is a **relaxed** max-priority queue: [`Zmsq::extract_max`] returns a
//! *high*-priority element which may not be *the* highest. In exchange it
//! scales far better than strict queues under extraction contention. Its
//! distinguishing practical features (paper §1):
//!
//! 1. **Extraction from a nonempty queue never fails** — `extract_max`
//!    returns `None` only if the queue was truly empty at some instant
//!    during the call.
//! 2. **Idle consumers can block** — [`Zmsq::extract_max_blocking`] parks
//!    threads on a circular buffer of futexes (§3.6) instead of spinning.
//! 3. **Memory safety without GC** — pool buffers are reclaimed through
//!    hazard pointers (or the paper's lagging-consumer wait), selectable
//!    via [`Reclamation`].
//! 4. **Accuracy independent of thread count** — relaxation is bounded by
//!    the tunable `batch` parameter: in any window of `k * batch`
//!    consecutive extractions the top `k` elements are all returned
//!    (paper §3.7). With `batch = 0` the queue is strict.
//!
//! # Structure
//!
//! The queue is a binary tree of `TNode`s (a *mound* variant), each
//! holding a small **set** of elements plus cached atomic `max`/`min`/
//! `count`. The mound invariant — a parent's max is ≥ its children's
//! maxes — makes the root's set the home of the best elements. Extraction
//! with `batch > 0` moves a batch of the root's elements into a shared
//! **pool** that subsequent extractions claim with one `fetch_sub`
//! (§3.3), touching the root only once per `batch + 1` extractions.
//! Insertion (§3.2) keeps sets long and dense: random-leaf probing,
//! forced insertion into under-full deep nodes, a parent-min swap that
//! compacts the parent's range, and an overflow split.
//!
//! # Quick start
//!
//! ```
//! use zmsq::{Zmsq, ZmsqConfig};
//!
//! let q: Zmsq<&'static str> = Zmsq::with_config(ZmsqConfig::default());
//! q.insert(10, "low");
//! q.insert(99, "high");
//! q.insert(50, "mid");
//!
//! // Relaxed extraction: a high-priority element, guaranteed Some while
//! // the queue is nonempty.
//! let (prio, _val) = q.extract_max().unwrap();
//! assert!(prio >= 10);
//! assert_eq!(q.drain_count(), 2); // the rest
//! ```
//!
//! Strict mode (`batch = 0`) behaves exactly like the mound and always
//! returns the true maximum:
//!
//! ```
//! use zmsq::{Zmsq, ZmsqConfig};
//! let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::strict());
//! for k in [3u64, 9, 1, 7] { q.insert(k, k); }
//! assert_eq!(q.extract_max(), Some((9, 9)));
//! assert_eq!(q.extract_max(), Some((7, 7)));
//! ```

#![warn(missing_docs)]

mod config;
mod pool;
mod queue;
mod rng;
mod set;
mod sharded;
pub mod slab;
mod stats;
mod tnode;
mod tree;

pub use config::{LockStrategy, QualityOpts, Reclamation, ShedPolicy, ZmsqConfig};
pub use queue::{SetSizeStats, Zmsq};
pub use set::{ArraySet, DequeSet, ListSet, NodeSet, SlabSet};
pub use sharded::{ShardedConfig, ShardedZmsq};
pub use slab::{Slab, SlabStats};
pub use stats::StatsSnapshot;

// Re-exported so bounded-queue callers can match the fallible-insert
// error without depending on `pq-traits` directly.
pub use pq_traits::InsertError;

// Re-exported so callers can name lock type parameters.
pub use zmsq_sync::{OsLock, RawTryLock, TasLock, TatasLock};

/// ZMSQ with the default linked-list sets ("ZMSQ" curves in the paper).
pub type ZmsqList<V> = Zmsq<V, ListSet<V>, TatasLock>;
/// ZMSQ with unsorted array sets ("ZMSQ (array)" curves in the paper).
pub type ZmsqArray<V> = Zmsq<V, ArraySet<V>, TatasLock>;
/// ZMSQ with sorted-deque sets — this reproduction's extension that makes
/// the §3.2 parent-min swap O(1) at both ends (see `DequeSet`).
pub type ZmsqDeque<V> = Zmsq<V, DequeSet<V>, TatasLock>;
/// ZMSQ with slab-backed, u32-index-linked sets: per-element storage comes
/// from a shared recycling [`Slab`] instead of the allocator, so
/// steady-state inserts/extracts are allocation-free (see [`Zmsq::bounded`]).
pub type ZmsqSlab<V> = Zmsq<V, SlabSet<V>, TatasLock>;

impl<V: Send + 'static, S: NodeSet<V> + 'static, L: RawTryLock + 'static>
    pq_traits::ConcurrentPriorityQueue<V> for Zmsq<V, S, L>
{
    fn insert(&self, prio: u64, value: V) {
        Zmsq::insert(self, prio, value)
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        Zmsq::extract_max(self)
    }

    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        Zmsq::insert_batch(self, items)
    }

    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        Zmsq::extract_batch(self, out, n)
    }

    fn try_insert(&self, prio: u64, value: V) -> Result<(), InsertError<V>> {
        Zmsq::try_insert(self, prio, value)
    }

    fn insert_timeout(
        &self,
        prio: u64,
        value: V,
        timeout: std::time::Duration,
    ) -> Result<(), InsertError<V>> {
        Zmsq::insert_timeout(self, prio, value, timeout)
    }

    fn name(&self) -> String {
        let mut n = format!("zmsq-{}", S::KIND);
        match self.config().reclamation {
            Reclamation::Leak => n.push_str("-leak"),
            Reclamation::ConsumerWait => n.push_str("-wait"),
            Reclamation::Hazard => {}
        }
        if self.config().batch == 0 {
            n.push_str("-strict");
        }
        n
    }

    fn is_relaxed(&self) -> bool {
        self.config().batch > 0
    }

    fn len_hint(&self) -> usize {
        self.len_hint()
    }

    fn capacity(&self) -> Option<usize> {
        self.capacity()
    }

    fn metrics(&self) -> Option<obs::Snapshot> {
        let mut s = self.stats().to_obs();
        s.push_gauge("zmsq.len_hint", self.len_hint() as i64);
        s.push_gauge("zmsq.batch.current", self.current_batch() as i64);
        s.push_counter("zmsq.leaked_buffers", self.leaked_buffers());
        if let Some(cap) = self.capacity() {
            s.push_gauge("queue.pressure.capacity", cap as i64);
            s.push_gauge("queue.pressure.occupancy", self.occupancy() as i64);
            s.push_gauge(
                "queue.pressure.producer_waiters",
                self.producer_waiters() as i64,
            );
        }
        if let Some(est) = self.rank_estimator() {
            est.snapshot_into(&mut s);
        }
        if let Some(soj) = self.sojourn_tracker() {
            soj.snapshot_into(&mut s);
        }
        Some(s)
    }
}
