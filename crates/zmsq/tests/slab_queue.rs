//! End-to-end tests for the slab-backed queue variant (`ZmsqSlab`) and
//! the bounded construction: allocation-free steady state, exact slot
//! conservation, and drain-to-exactly-empty.

use std::sync::atomic::{AtomicU64, Ordering};

use zmsq::{ShedPolicy, Zmsq, ZmsqConfig, ZmsqSlab};

/// Concurrent churn on the slab variant, then quiescent conservation:
/// every slot the sets allocated must be returned (`live == queue len`),
/// and the queue's contents drain exactly.
#[test]
fn slab_queue_conserves_slots_under_concurrency() {
    let mut q: ZmsqSlab<u64> = Zmsq::with_config(ZmsqConfig::default().batch(8).target_len(12));
    const THREADS: u64 = 8;
    const PER: u64 = 4_000;
    let popped = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            let popped = &popped;
            s.spawn(move || {
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for i in 0..PER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.insert(x % 100_000, x);
                    if i % 3 != 0 && q.extract_max().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    q.validate_invariants().unwrap();
    let stats = q.stats();
    let remaining = stats.inserts - stats.extracts;
    let slab = q.slab_stats().expect("slab variant exposes arena stats");
    // The pool may hold a refilled batch outside the tree's sets, but at
    // quiescence every slot the sets freed is accounted: live slots are
    // exactly the elements still in tree sets (remaining minus pooled).
    assert!(
        slab.live <= remaining,
        "live slots ({}) cannot exceed queue length ({remaining})",
        slab.live
    );
    assert_eq!(q.drain_count() as u64, remaining);
    assert_eq!(
        q.slab_stats().unwrap().live,
        0,
        "a drained queue holds zero live slots"
    );
}

/// Bounded construction: after a warmup that touches every pre-allocated
/// slot, sustained churn at capacity performs zero slab growth — the
/// allocation-free steady state the bounded variant exists for.
#[test]
fn bounded_steady_state_never_grows_slab() {
    const CAP: usize = 512;
    let q: ZmsqSlab<u64> = Zmsq::bounded(CAP);
    // Warmup: fill to capacity once.
    for i in 0..CAP as u64 {
        q.insert(i, i);
    }
    assert_eq!(
        q.slab_stats().unwrap().grows,
        0,
        "bounded() pre-publishes chunks; filling to capacity must not grow"
    );
    let grows_after_warmup = q.slab_stats().unwrap().grows;
    // Steady state: replace elements many times over at capacity.
    for round in 0..40u64 {
        for i in 0..64u64 {
            let (p, _) = q.extract_max().expect("at-capacity queue is nonempty");
            q.insert(p.wrapping_add(round * 64 + i) % 10_000, i);
        }
    }
    let s = q.slab_stats().unwrap();
    assert_eq!(
        s.grows, grows_after_warmup,
        "steady-state churn within capacity must not touch the allocator"
    );
    assert!(s.hits > 0, "churn recycles freed slots");
    // The counters surface through the generic stats path too.
    let snap = q.stats();
    assert_eq!(snap.slab_grows, s.grows);
    assert_eq!(snap.slab_hits, s.hits);
}

/// Bounded variant drains to exactly empty: every admitted element comes
/// back out, extract on the emptied queue reports None, and the slab
/// ends with zero live slots.
#[test]
fn bounded_drains_to_exactly_empty() {
    const CAP: usize = 256;
    let q: ZmsqSlab<u64> = Zmsq::with_config(
        ZmsqConfig::default()
            .capacity(CAP)
            .shed_policy(ShedPolicy::Reject),
    );
    let mut admitted = 0u64;
    for i in 0..(CAP as u64 * 2) {
        if q.try_insert(i, i).is_ok() {
            admitted += 1;
        }
    }
    assert_eq!(admitted, CAP as u64, "Reject admits exactly capacity");
    let mut drained = 0u64;
    while q.extract_max().is_some() {
        drained += 1;
    }
    assert_eq!(drained, admitted, "every admitted element extracts");
    assert!(q.extract_max().is_none());
    assert_eq!(q.len_hint(), 0);
    assert_eq!(q.slab_stats().unwrap().live, 0);
    // And the queue is still usable after full drain.
    q.insert(7, 7);
    assert_eq!(q.extract_max(), Some((7, 7)));
}

/// `capacity()` surfaces through the trait for bounded queues and stays
/// `None` for unbounded ones.
#[test]
fn capacity_reported_through_trait() {
    use pq_traits::ConcurrentPriorityQueue;
    let bounded: ZmsqSlab<u64> = Zmsq::bounded(128);
    assert_eq!(ConcurrentPriorityQueue::capacity(&bounded), Some(128));
    let unbounded: ZmsqSlab<u64> = Zmsq::new();
    assert_eq!(ConcurrentPriorityQueue::capacity(&unbounded), None);
}

/// The slab queue round-trips non-Copy payloads (drop-glue values take
/// the `assume_init_read` ownership path on every extract/drain/drop).
#[test]
fn slab_queue_string_payloads() {
    let q: ZmsqSlab<String> = Zmsq::with_config(ZmsqConfig::default().batch(4).target_len(6));
    for i in 0..200u64 {
        q.insert(i, format!("payload-{i}"));
    }
    let (p, v) = q.extract_max().unwrap();
    assert_eq!(v, format!("payload-{p}"));
    // Drop the queue with live elements: set Drop must free their slots.
    drop(q);
}
