//! Ablation correctness: disabling the §3.2 quality mechanisms must not
//! affect safety (conservation, invariants) — only quality — and the
//! mechanisms must demonstrably fire when enabled.

use zmsq::{QualityOpts, Zmsq, ZmsqConfig};

fn mixed_run(cfg: ZmsqConfig) -> Zmsq<u64> {
    let q: Zmsq<u64> = Zmsq::with_config(cfg);
    let mut x = 0x1234_5678u64;
    // Prefill so the tree is deep enough for the mechanisms to apply
    // (forced insertion needs populated leaves below level 3).
    for _ in 0..20_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        q.insert(x % 1_000_000, x);
    }
    for _ in 0..50_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        q.insert(x % 1_000_000, x);
        q.extract_max();
    }
    q
}

#[test]
fn mechanisms_fire_when_enabled() {
    let q = mixed_run(ZmsqConfig::default().batch(16).target_len(16));
    let s = q.stats();
    assert!(s.forced_inserts > 0, "forced insertion should occur");
    assert!(s.min_swap_inserts > 0, "parent-min swaps should occur");
}

#[test]
fn disabled_mechanisms_never_fire() {
    let q = mixed_run(
        ZmsqConfig::default()
            .batch(16)
            .target_len(16)
            .quality(QualityOpts {
                forced_insert: false,
                parent_min_swap: false,
            }),
    );
    let s = q.stats();
    assert_eq!(s.forced_inserts, 0);
    assert_eq!(s.min_swap_inserts, 0);
}

#[test]
fn ablated_queue_is_still_correct() {
    for quality in [
        QualityOpts {
            forced_insert: false,
            parent_min_swap: true,
        },
        QualityOpts {
            forced_insert: true,
            parent_min_swap: false,
        },
        QualityOpts {
            forced_insert: false,
            parent_min_swap: false,
        },
    ] {
        let mut q: Zmsq<u64> = Zmsq::with_config(
            ZmsqConfig::default()
                .batch(8)
                .target_len(12)
                .quality(quality),
        );
        use std::sync::atomic::{AtomicU64, Ordering};
        let got = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (q, got) = (&q, &got);
                s.spawn(move || {
                    for i in 0..4_000u64 {
                        q.insert((t * 4000 + i) % 9999, i);
                        if i % 2 == 0 && q.extract_max().is_some() {
                            got.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let rest = q.drain_count() as u64;
        assert_eq!(got.into_inner() + rest, 16_000, "{quality:?}");
        q.validate_invariants().unwrap();
    }
}

#[test]
fn quality_mechanisms_improve_set_density() {
    // The load-bearing claim of §3.2: the mechanisms keep sets long. With
    // them off, the structure trends toward the mound's short lists.
    let density = |quality: QualityOpts| {
        let mut q: Zmsq<u64> = Zmsq::with_config(
            ZmsqConfig::default()
                .batch(32)
                .target_len(32)
                .quality(quality),
        );
        let mut x = 42u64;
        for _ in 0..50_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.insert(x % 1_000_000, x);
        }
        for _ in 0..100_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.insert(x % 1_000_000, x);
            q.extract_max();
        }
        q.set_size_stats().mean
    };
    let with = density(QualityOpts::default());
    let without = density(QualityOpts {
        forced_insert: false,
        parent_min_swap: false,
    });
    assert!(
        with > without * 1.5,
        "quality mechanisms should lengthen sets: with={with:.1} without={without:.1}"
    );
}

#[test]
fn min_swap_drives_accuracy() {
    // Measured decomposition (EXPERIMENTS.md F1/ablation): the parent-min
    // swap is the *accuracy* mechanism — without it, elements inserted as
    // new maxima trap low keys high in the tree and the top-rank hit rate
    // collapses. Pin the direction (not the exact magnitude).
    let hit_rate = |quality: QualityOpts| {
        let q: Zmsq<u64> = Zmsq::with_config(
            ZmsqConfig::default()
                .batch(32)
                .target_len(32)
                .quality(quality),
        );
        // Distinct shuffled keys.
        let n = 8192u64;
        for i in 0..n {
            q.insert((i * 48271) % 65536, i);
        }
        let extract = (n / 10) as usize;
        let mut keys: Vec<u64> = (0..n).map(|i| (i * 48271) % 65536).collect();
        keys.sort_unstable_by(|a, b| b.cmp(a));
        let threshold = keys[extract - 1];
        let mut hits = 0usize;
        for _ in 0..extract {
            if q.extract_max().unwrap().0 >= threshold {
                hits += 1;
            }
        }
        hits as f64 / extract as f64
    };
    let with = hit_rate(QualityOpts::default());
    let without = hit_rate(QualityOpts {
        parent_min_swap: false,
        ..Default::default()
    });
    assert!(
        with > without + 0.15,
        "min-swap should lift accuracy decisively: with={with:.3} without={without:.3}"
    );
}

#[test]
fn strict_mode_unaffected_by_ablation() {
    // In strict mode extraction order is exact regardless of quality
    // settings — they only affect performance/shape.
    for quality in [
        QualityOpts::default(),
        QualityOpts {
            forced_insert: false,
            parent_min_swap: false,
        },
    ] {
        let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::strict().quality(quality));
        let mut keys: Vec<u64> = (0..3000u64).map(|i| (i * 48271) % 100_000).collect();
        for &k in &keys {
            q.insert(k, k);
        }
        keys.sort_unstable_by(|a, b| b.cmp(a));
        for &expect in &keys {
            assert_eq!(q.extract_max().map(|p| p.0), Some(expect));
        }
    }
}
