//! Crate-level concurrency tests for ZMSQ: deep tree growth, thread
//! oversubscription, and configuration extremes.

use std::sync::atomic::{AtomicU64, Ordering};

use zmsq::{Zmsq, ZmsqConfig};

/// Tiny target_len + many elements forces the tree through repeated
/// expansions (several levels past the initial depth) while concurrent
/// extractions shrink sets from the top.
#[test]
fn deep_tree_growth_under_concurrency() {
    let mut q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig {
        initial_leaf_level: 1,
        ..ZmsqConfig::default().batch(2).target_len(2)
    });
    const THREADS: u64 = 4;
    const PER: u64 = 15_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            s.spawn(move || {
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for i in 0..PER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.insert(x % 1_000_000, x);
                    if i % 4 == 3 {
                        q.extract_max();
                    }
                }
            });
        }
    });
    let stats = q.stats();
    assert!(stats.tree_grows > 0, "tiny sets must force tree growth");
    assert!(stats.splits > 0, "tiny sets must force splits");
    q.validate_invariants().unwrap();
    let remaining = q.drain_count() as u64;
    assert_eq!(stats.inserts - stats.extracts, remaining);
}

/// Way more threads than cores: correctness must hold under heavy
/// preemption (this container has 1 core, making this the harshest
/// interleaving generator available).
#[test]
fn oversubscribed_threads() {
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(16).target_len(24));
    const THREADS: u64 = 16;
    const PER: u64 = 2_000;
    let popped = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            let popped = &popped;
            s.spawn(move || {
                for i in 0..PER {
                    q.insert((t * PER + i) % 31, i);
                    if i % 2 == 0 && q.extract_max().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let rest = q.drain_count() as u64;
    assert_eq!(popped.into_inner() + rest, THREADS * PER);
}

/// One-slot event buffer: maximal contention on the single futex word.
#[test]
fn blocking_with_single_event_slot() {
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig {
        event_slots: 1,
        ..ZmsqConfig::default().batch(4).target_len(8).blocking(true)
    });
    const ITEMS: u64 = 5_000;
    let got = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..3 {
            let q = &q;
            let got = &got;
            s.spawn(move || {
                while q.extract_max_blocking().is_some() {
                    got.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        let q2 = &q;
        let got2 = &got;
        s.spawn(move || {
            for i in 0..ITEMS {
                q2.insert(i % 97, i);
            }
            while got2.load(Ordering::SeqCst) < ITEMS {
                std::thread::yield_now();
            }
            q2.close();
        });
    });
    assert_eq!(got.into_inner(), ITEMS);
}

/// Alternating full drains: the queue repeatedly transitions through
/// truly-empty states under concurrency, exercising the emptiness
/// machinery (swap-down of empty sets, pool exhaustion) end to end.
#[test]
fn repeated_drain_cycles() {
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(8).target_len(12));
    for round in 0..20u64 {
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..500 {
                        q.insert(round * 1000 + (i + t) % 333, i);
                    }
                });
            }
        });
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let (q, counter) = (&q, &counter);
                s.spawn(move || {
                    while q.extract_max().is_some() {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        // Every round fully drains: 1500 in, 1500 out.
        assert_eq!(counter.into_inner(), 1500, "round {round}");
        assert_eq!(q.extract_max(), None, "round {round} left elements");
    }
    let s = q.stats();
    assert_eq!(s.inserts, 20 * 1500);
    assert_eq!(s.extracts, 20 * 1500);
}

/// Values with destructors and non-Copy payloads work through every path
/// (pool transfer, set swaps, splits).
#[test]
fn string_payloads() {
    let q: Zmsq<String> = Zmsq::with_config(ZmsqConfig::default().batch(4).target_len(6));
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let q = &q;
            s.spawn(move || {
                for i in 0..2_000u64 {
                    q.insert((t * 2000 + i) % 500, format!("value-{t}-{i}"));
                    if i % 2 == 1 {
                        if let Some((_, v)) = q.extract_max() {
                            assert!(v.starts_with("value-"));
                        }
                    }
                }
            });
        }
    });
    while let Some((_, v)) = q.extract_max() {
        assert!(v.starts_with("value-"));
    }
}
