//! Stall watchdog: a background thread that samples caller-supplied
//! progress counters and pressure gauges, flags probes that stop moving
//! while their subsystem claims to be busy, and dumps the flight
//! recorder on a sustained stall.
//!
//! The [`sampler`](crate::sampler) answers "what did this value do over
//! time"; the watchdog answers "is anyone still making progress". A
//! *progress probe* pairs a monotone counter (extractions served,
//! elements admitted, buffers reclaimed) with a *busy* predicate (queue
//! nonempty, producers parked, retirements pending). A probe is
//! **stalled** when the counter has not moved for
//! [`stall_after`](WatchdogBuilder::stall_after) consecutive ticks
//! while every one of those ticks observed `busy() == true` — an idle
//! subsystem is never stalled, no matter how long its counter rests.
//!
//! On the tick a probe *becomes* stalled the watchdog increments its
//! stall count, emits a `watchdog.stall` trace event, and — once per
//! watchdog lifetime — calls [`recorder::dump_on_failure`] so the
//! moments leading into the stall survive for the post-mortem (a no-op
//! without the `obs-trace` feature, exactly like the queue's own
//! failure paths).
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! let served = Arc::new(AtomicU64::new(0));
//! let probe = Arc::clone(&served);
//! let wd = obs::Watchdog::builder(std::time::Duration::from_millis(1))
//!     .stall_after(3)
//!     .progress("served", move || probe.load(Ordering::Relaxed), || true)
//!     .start();
//! // `served` never moves while "busy" => the probe must stall.
//! std::thread::sleep(std::time::Duration::from_millis(30));
//! let report = wd.stop();
//! assert!(report.counter("watchdog.stall.served").unwrap() >= 1);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::recorder;
use crate::snapshot::Snapshot;

/// Default consecutive no-progress ticks before a busy probe counts as
/// stalled. At the default 10 ms tick this is half a second — far above
/// any scheduler hiccup, far below a human noticing a hang.
pub const DEFAULT_STALL_TICKS: u32 = 50;

struct ProgressProbe {
    name: String,
    counter: Box<dyn FnMut() -> u64 + Send>,
    busy: Box<dyn FnMut() -> bool + Send>,
    last: u64,
    /// Consecutive busy-but-unmoved ticks.
    quiet_ticks: u32,
    /// Whether the probe is currently past the stall threshold (so a
    /// long stall is one event, not one per tick).
    stalled: bool,
    stall_count: u64,
}

struct GaugeProbe {
    name: String,
    read: Box<dyn FnMut() -> i64 + Send>,
    last: i64,
    peak: i64,
}

/// Builder for a [`Watchdog`]; see the module docs.
pub struct WatchdogBuilder {
    interval: Duration,
    stall_ticks: u32,
    progress: Vec<ProgressProbe>,
    gauges: Vec<GaugeProbe>,
}

impl WatchdogBuilder {
    /// Ticks of no counter movement (while busy) before a probe is
    /// declared stalled. Clamped to at least 1.
    pub fn stall_after(mut self, ticks: u32) -> Self {
        self.stall_ticks = ticks.max(1);
        self
    }

    /// Watch a monotone progress counter. `busy` gates the stall
    /// verdict: ticks where it returns `false` reset nothing but count
    /// nothing either — only *busy* stagnation accumulates.
    pub fn progress(
        mut self,
        name: &str,
        counter: impl FnMut() -> u64 + Send + 'static,
        busy: impl FnMut() -> bool + Send + 'static,
    ) -> Self {
        self.progress.push(ProgressProbe {
            name: name.to_string(),
            counter: Box::new(counter),
            busy: Box::new(busy),
            last: 0,
            quiet_ticks: 0,
            stalled: false,
            stall_count: 0,
        });
        self
    }

    /// Sample an instantaneous gauge each tick; the report carries its
    /// last value (`<name>`) and observed peak (`<name>.peak`).
    pub fn gauge(mut self, name: &str, read: impl FnMut() -> i64 + Send + 'static) -> Self {
        self.gauges.push(GaugeProbe {
            name: name.to_string(),
            read: Box::new(read),
            last: 0,
            peak: i64::MIN,
        });
        self
    }

    /// Spawn the watchdog thread.
    pub fn start(mut self) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let ticks = Arc::new(AtomicU64::new(0));
        let stalls = Arc::new(AtomicU64::new(0));
        // Prime the progress baselines so a counter that was already
        // moving before start() is not charged for its pre-start value.
        for p in &mut self.progress {
            p.last = (p.counter)();
        }
        let (stop2, ticks2, stalls2) = (Arc::clone(&stop), Arc::clone(&ticks), Arc::clone(&stalls));
        let interval = self.interval;
        let stall_ticks = self.stall_ticks;
        let mut progress = self.progress;
        let mut gauges = self.gauges;
        let handle = std::thread::Builder::new()
            .name("obs-watchdog".into())
            .spawn(move || {
                let mut dumped = false;
                while !stop2.load(Ordering::Acquire) {
                    ticks2.fetch_add(1, Ordering::Relaxed);
                    for p in &mut progress {
                        let now = (p.counter)();
                        if now != p.last {
                            p.last = now;
                            p.quiet_ticks = 0;
                            p.stalled = false;
                            continue;
                        }
                        if !(p.busy)() {
                            // Idle stagnation is legitimate; restart the
                            // window so only *sustained busy* counts.
                            p.quiet_ticks = 0;
                            continue;
                        }
                        p.quiet_ticks = p.quiet_ticks.saturating_add(1);
                        if p.quiet_ticks >= stall_ticks && !p.stalled {
                            p.stalled = true;
                            p.stall_count += 1;
                            stalls2.fetch_add(1, Ordering::Relaxed);
                            crate::trace_event!(
                                crate::EventKind::WatchdogStall,
                                p.quiet_ticks,
                                now
                            );
                            if !dumped {
                                dumped = true;
                                recorder::dump_on_failure("watchdog-stall");
                            }
                        }
                    }
                    for g in &mut gauges {
                        g.last = (g.read)();
                        g.peak = g.peak.max(g.last);
                    }
                    // Short sleep slices keep stop() responsive.
                    let mut remaining = interval;
                    while !stop2.load(Ordering::Acquire) && !remaining.is_zero() {
                        let slice = remaining.min(Duration::from_millis(5));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
                // Hand the probe state back through the report channel.
                WatchdogReportState { progress, gauges }
            })
            .expect("spawn obs watchdog");
        Watchdog {
            stop,
            ticks,
            stalls,
            handle: Some(handle),
        }
    }
}

struct WatchdogReportState {
    progress: Vec<ProgressProbe>,
    gauges: Vec<GaugeProbe>,
}

/// A running stall watchdog; stop it to collect the report snapshot.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    ticks: Arc<AtomicU64>,
    stalls: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<WatchdogReportState>>,
}

impl Watchdog {
    /// Start building a watchdog that ticks every `interval`.
    pub fn builder(interval: Duration) -> WatchdogBuilder {
        WatchdogBuilder {
            interval,
            stall_ticks: DEFAULT_STALL_TICKS,
            progress: Vec::new(),
            gauges: Vec::new(),
        }
    }

    /// Ticks elapsed so far (readable while running).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Stall events so far (readable while running). A probe that stays
    /// stalled counts once until it makes progress again.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Whether any probe has ever stalled (readable while running).
    pub fn saw_stall(&self) -> bool {
        self.stalls() > 0
    }

    /// Stop the thread and return the report: `watchdog.ticks` /
    /// `watchdog.stalls` counters, per-probe `watchdog.stall.<name>`
    /// counters, and each gauge's last value plus `<name>.peak`.
    pub fn stop(mut self) -> Snapshot {
        self.stop.store(true, Ordering::Release);
        let state = self
            .handle
            .take()
            .map(|h| h.join().expect("watchdog thread panicked"));
        let mut s = Snapshot::new();
        s.push_counter("watchdog.ticks", self.ticks.load(Ordering::Relaxed));
        s.push_counter("watchdog.stalls", self.stalls.load(Ordering::Relaxed));
        if let Some(state) = state {
            for p in &state.progress {
                s.push_counter(&format!("watchdog.stall.{}", p.name), p.stall_count);
            }
            for g in &state.gauges {
                s.push_gauge(&g.name, g.last);
                s.push_gauge(
                    &format!("{}.peak", g.name),
                    if g.peak == i64::MIN { 0 } else { g.peak },
                );
            }
        }
        s
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn moving_counter_never_stalls() {
        let n = Arc::new(AtomicU64::new(0));
        let probe = Arc::clone(&n);
        let wd = Watchdog::builder(Duration::from_millis(1))
            .stall_after(2)
            .progress(
                "work",
                move || probe.fetch_add(1, Ordering::Relaxed),
                || true,
            )
            .start();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(wd.stalls(), 0);
        let report = wd.stop();
        assert_eq!(report.counter("watchdog.stall.work"), Some(0));
        assert!(report.counter("watchdog.ticks").unwrap() > 0);
    }

    #[test]
    fn busy_stagnation_stalls_and_recovers() {
        let n = Arc::new(AtomicU64::new(0));
        let probe = Arc::clone(&n);
        let wd = Watchdog::builder(Duration::from_millis(1))
            .stall_after(3)
            .progress("work", move || probe.load(Ordering::Relaxed), || true)
            .start();
        // Frozen while busy: must stall exactly once (sustained stalls
        // do not re-fire every tick).
        while !wd.saw_stall() {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(wd.stalls(), 1, "one sustained stall, one event");
        // Progress resumes, then freezes again: a second stall event.
        n.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(30));
        let report = wd.stop();
        assert_eq!(report.counter("watchdog.stall.work"), Some(2));
    }

    #[test]
    fn idle_stagnation_is_not_a_stall() {
        let wd = Watchdog::builder(Duration::from_millis(1))
            .stall_after(2)
            .progress("idle", || 0, || false)
            .start();
        std::thread::sleep(Duration::from_millis(30));
        let report = wd.stop();
        assert_eq!(report.counter("watchdog.stalls"), Some(0));
        assert_eq!(report.counter("watchdog.stall.idle"), Some(0));
    }

    #[test]
    fn gauges_report_last_and_peak() {
        let v = Arc::new(AtomicU64::new(7));
        let probe = Arc::clone(&v);
        let wd = Watchdog::builder(Duration::from_millis(1))
            .gauge("queue.pressure.occupancy", move || {
                probe.load(Ordering::Relaxed) as i64
            })
            .start();
        std::thread::sleep(Duration::from_millis(10));
        v.store(99, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
        v.store(3, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
        let report = wd.stop();
        assert_eq!(report.gauge("queue.pressure.occupancy"), Some(3));
        assert_eq!(report.gauge("queue.pressure.occupancy.peak"), Some(99));
    }

    #[test]
    fn drop_without_stop_joins_thread() {
        let wd = Watchdog::builder(Duration::from_millis(1))
            .progress("x", || 0, || true)
            .start();
        drop(wd); // must not hang
    }
}
