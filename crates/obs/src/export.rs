//! Live export: Prometheus text rendering and a tiny zero-dependency
//! HTTP endpoint.
//!
//! Two halves:
//!
//! * [`render_prometheus`] — renders a [`Snapshot`] in the Prometheus
//!   text exposition format (version 0.0.4): counters as `counter`
//!   families, gauges/ratios/summaries as `gauge`, histograms as
//!   cumulative `_bucket{le=…}` series plus `_sum`/`_count`.
//! * [`serve`] — a deliberately small HTTP/1.0 listener on a raw
//!   [`std::net::TcpListener`] with one handler thread and three
//!   endpoints: `/metrics` (Prometheus text), `/snapshot.json` (the
//!   snapshot's canonical JSON) and `/healthz`. It exists so a bench or
//!   service can be scraped *while running*, without pulling an HTTP
//!   stack into the dependency graph.
//!
//! # Name and label conventions
//!
//! Snapshot metric names are dotted (`quality.est_rank`); Prometheus
//! names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`. Every invalid character
//! is mangled to `_` (a leading digit gets a `_` prefix).
//!
//! A snapshot name may carry an inline label suffix in braces —
//! `sync.wait_ns{site=zmsq.root}` — which the renderer parses into
//! proper Prometheus labels with quoted, escaped values:
//! `sync_wait_ns_bucket{site="zmsq.root",le="255"}`. Label *values* are
//! kept verbatim (only escaped); label *names* are mangled like metric
//! names. JSON output keeps the literal braced name.
//!
//! # Histogram buckets
//!
//! The snapshot's sparse `(floor, count)` buckets become cumulative
//! `le` boundaries: bucket *j*'s samples all lie below the next present
//! floor, so the boundary emitted for bucket *j* is
//! `next_floor - 1` (exact: samples are integers), and the final
//! boundary is `+Inf`. Boundaries are strictly increasing and the
//! cumulative counts are nondecreasing — the golden test pins both.

use std::io::{Read, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::snapshot::Snapshot;

/// Mangle one character for a Prometheus metric or label name.
fn mangle_char(c: char) -> char {
    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
        c
    } else {
        '_'
    }
}

/// Mangle a dotted snapshot name into a valid Prometheus name.
fn mangle_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_digit() => {
            out.push('_');
            out.push(c);
        }
        Some(c) => out.push(mangle_char(c)),
        None => return "_".to_string(),
    }
    out.extend(chars.map(mangle_char));
    out
}

/// Escape a label value per the exposition format: `\`, `"`, newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Split `name{k=v,k2=v2}` into the base name and its label pairs.
/// Names without a well-formed `{…}` suffix have no labels.
fn split_labels(name: &str) -> (&str, Vec<(String, String)>) {
    let Some(open) = name.find('{') else {
        return (name, Vec::new());
    };
    if !name.ends_with('}') {
        return (name, Vec::new());
    }
    let base = &name[..open];
    let body = &name[open + 1..name.len() - 1];
    let mut labels = Vec::new();
    for pair in body.split(',') {
        let Some((k, v)) = pair.split_once('=') else {
            // Malformed pair: treat the whole suffix as part of the name
            // (it will be mangled) rather than guessing.
            return (name, Vec::new());
        };
        labels.push((mangle_name(k.trim()), v.trim().to_string()));
    }
    (base, labels)
}

/// Render a label set (possibly with an extra `le` pair) as
/// `{k="v",…}`, or the empty string when there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
    out
}

/// Format an `f64` the way Prometheus expects (`+Inf`, `-Inf`, `NaN`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

/// One family: `# TYPE` header plus its sample lines, grouped so a
/// family with several label sets gets exactly one header.
struct Family {
    kind: &'static str,
    lines: Vec<String>,
}

fn push_sample(
    families: &mut Vec<(String, Family)>,
    family: &str,
    kind: &'static str,
    line: String,
) {
    if let Some((_, f)) = families.iter_mut().find(|(n, _)| n == family) {
        f.lines.push(line);
    } else {
        families.push((
            family.to_string(),
            Family {
                kind,
                lines: vec![line],
            },
        ));
    }
}

/// Render a [`Snapshot`] in the Prometheus text exposition format.
///
/// Ordering is deterministic: families appear in first-encounter order
/// (counters, gauges, ratios, summaries, histograms, then series
/// digests), each with a single `# TYPE` line.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut families: Vec<(String, Family)> = Vec::new();

    for (name, v) in &snap.counters {
        let (base, labels) = split_labels(name);
        let fam = mangle_name(base);
        let line = format!("{fam}{} {v}", render_labels(&labels, None));
        push_sample(&mut families, &fam, "counter", line);
    }
    for (name, v) in &snap.gauges {
        let (base, labels) = split_labels(name);
        let fam = mangle_name(base);
        let line = format!("{fam}{} {v}", render_labels(&labels, None));
        push_sample(&mut families, &fam, "gauge", line);
    }
    for (name, v) in &snap.ratios {
        let (base, labels) = split_labels(name);
        let fam = mangle_name(base);
        let line = format!("{fam}{} {}", render_labels(&labels, None), fmt_f64(*v));
        push_sample(&mut families, &fam, "gauge", line);
    }
    for (name, v) in &snap.summary {
        let (base, labels) = split_labels(name);
        let fam = mangle_name(base);
        let line = format!("{fam}{} {}", render_labels(&labels, None), fmt_f64(*v));
        push_sample(&mut families, &fam, "gauge", line);
    }
    for (name, h) in &snap.hists {
        let (base, labels) = split_labels(name);
        let fam = mangle_name(base);
        let mut cum = 0u64;
        for (j, (_, count)) in h.buckets.iter().enumerate() {
            cum += count;
            // Bucket j's samples all lie strictly below the next present
            // floor (gap buckets are empty); samples are integers, so
            // `next_floor - 1` is an exact inclusive boundary.
            let le = match h.buckets.get(j + 1) {
                Some((next_floor, _)) => fmt_f64((next_floor - 1) as f64),
                None => continue, // last finite bucket folds into +Inf
            };
            let line = format!("{fam}_bucket{} {cum}", render_labels(&labels, Some(&le)));
            push_sample(&mut families, &fam, "histogram", line);
        }
        let inf = format!(
            "{fam}_bucket{} {}",
            render_labels(&labels, Some("+Inf")),
            h.count
        );
        push_sample(&mut families, &fam, "histogram", inf);
        let lbl = render_labels(&labels, None);
        push_sample(
            &mut families,
            &fam,
            "histogram",
            format!("{fam}_sum{lbl} {}", h.sum),
        );
        push_sample(
            &mut families,
            &fam,
            "histogram",
            format!("{fam}_count{lbl} {}", h.count),
        );
    }
    // Retained/collected time series: per-scrape duplicate timestamps
    // are invalid Prometheus, so each series is digested into labeled
    // gauges — the latest value per column plus the retained row count.
    // Full history is available from `/snapshot.json`.
    for s in &snap.series {
        if let Some(last) = s.rows.last() {
            for (col, v) in s.columns.iter().zip(last.iter()).skip(1) {
                let labels = vec![
                    ("series".to_string(), s.name.clone()),
                    ("column".to_string(), col.clone()),
                ];
                let line = format!(
                    "obs_series_last{} {}",
                    render_labels(&labels, None),
                    fmt_f64(*v)
                );
                push_sample(&mut families, "obs_series_last", "gauge", line);
            }
        }
        let labels = vec![("series".to_string(), s.name.clone())];
        let line = format!(
            "obs_series_rows{} {}",
            render_labels(&labels, None),
            s.rows.len()
        );
        push_sample(&mut families, "obs_series_rows", "gauge", line);
    }

    let mut out = String::new();
    for (k, v) in &snap.meta {
        out.push_str(&format!("# meta {k}={}\n", v.replace('\n', " ")));
    }
    for (name, fam) in &families {
        out.push_str(&format!("# TYPE {name} {}\n", fam.kind));
        for line in &fam.lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Handle on the background listener thread; dropping (or calling
/// [`stop`](Self::stop)) shuts it down.
pub struct MetricsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address — useful with `:0` (ephemeral port) binds.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the introspection endpoint on `addr` (e.g. `127.0.0.1:9901`
/// or `127.0.0.1:0` for an ephemeral port).
///
/// `source` is called once per request to produce the snapshot served
/// at both `/metrics` (Prometheus text) and `/snapshot.json`.
/// `/healthz` answers `ok` without calling the source. The server is
/// HTTP/1.0, one connection at a time, `Connection: close` — it is an
/// introspection hatch, not a web server.
pub fn serve<A, F>(addr: A, source: F) -> std::io::Result<MetricsServer>
where
    A: ToSocketAddrs,
    F: Fn() -> Snapshot + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("obs-serve".to_string())
        .spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => handle_conn(stream, &source),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // Nonblocking accept so stop() stays responsive.
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        })?;
    Ok(MetricsServer {
        addr: bound,
        stop,
        handle: Some(handle),
    })
}

fn handle_conn<F: Fn() -> Snapshot>(mut stream: std::net::TcpStream, source: &F) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_nodelay(true);
    // One read is enough for a GET request line; anything beyond the
    // first line (headers, body) is ignored.
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(0) | Err(_) => return,
        Ok(n) => n,
    };
    let req = String::from_utf8_lossy(&buf[..n]);
    let mut parts = req.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                render_prometheus(&source()),
            ),
            "/snapshot.json" => ("200 OK", "application/json", source().to_json()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn synthetic() -> Snapshot {
        let mut s = Snapshot::new();
        s.push_counter("zmsq.inserts", 100);
        s.push_counter("sync.trylock_fails{site=zmsq.root}", 7);
        s.push_counter("sync.trylock_fails{site=zmsq.node}", 3);
        s.push_gauge("queue.pressure.occupancy", -2);
        s.push_ratio("trylock.contention_ratio", 0.25);
        s.push_summary("zmsq/throughput_ops_per_s", 1.5e6);
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 10_000] {
            h.record(v);
        }
        s.push_hist("queue.sojourn_ns", &h);
        s.push_meta("bench", "golden");
        s
    }

    #[test]
    fn name_mangling() {
        assert_eq!(mangle_name("quality.est_rank"), "quality_est_rank");
        assert_eq!(mangle_name("9lives"), "_9lives");
        assert_eq!(mangle_name("a-b c/d"), "a_b_c_d");
        assert_eq!(mangle_name(""), "_");
    }

    #[test]
    fn label_splitting_and_escaping() {
        let (base, labels) = split_labels("sync.wait_ns{site=zmsq.root}");
        assert_eq!(base, "sync.wait_ns");
        assert_eq!(labels, vec![("site".to_string(), "zmsq.root".to_string())]);
        // Malformed suffixes degrade to a plain (mangled) name.
        let (base, labels) = split_labels("odd{notapair}");
        assert_eq!(base, "odd{notapair}");
        assert!(labels.is_empty());
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn golden_render() {
        let text = render_prometheus(&synthetic());
        // Counter family with label sets under one TYPE header.
        assert!(text.contains("# TYPE sync_trylock_fails counter"));
        assert!(text.contains("sync_trylock_fails{site=\"zmsq.root\"} 7"));
        assert!(text.contains("sync_trylock_fails{site=\"zmsq.node\"} 3"));
        assert_eq!(
            text.matches("# TYPE sync_trylock_fails counter").count(),
            1,
            "one TYPE line per family"
        );
        assert!(text.contains("zmsq_inserts 100"));
        assert!(text.contains("queue_pressure_occupancy -2"));
        assert!(text.contains("trylock_contention_ratio 0.25"));
        assert!(text.contains("zmsq_throughput_ops_per_s 1500000"));
        // Histogram: TYPE, +Inf bucket carrying the total, sum, count.
        assert!(text.contains("# TYPE queue_sojourn_ns histogram"));
        assert!(text.contains("queue_sojourn_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("queue_sojourn_ns_count 5"));
        assert!(text.contains("queue_sojourn_ns_sum 10106"));
        assert!(text.contains("# meta bench=golden"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let text = render_prometheus(&synthetic());
        let mut les = Vec::new();
        let mut cums = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("queue_sojourn_ns_bucket{le=\"") {
                let (le, rest) = rest.split_once('"').unwrap();
                let cum: u64 = rest.trim_start_matches('}').trim().parse().unwrap();
                les.push(le.to_string());
                cums.push(cum);
            }
        }
        assert!(les.len() >= 2, "expected finite buckets plus +Inf");
        assert_eq!(les.last().unwrap(), "+Inf");
        let finite: Vec<f64> = les[..les.len() - 1]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(
            finite.windows(2).all(|w| w[0] < w[1]),
            "le boundaries strictly increasing: {finite:?}"
        );
        assert!(
            cums.windows(2).all(|w| w[0] <= w[1]),
            "cumulative counts nondecreasing: {cums:?}"
        );
        assert_eq!(*cums.last().unwrap(), 5, "+Inf bucket holds the total");
    }

    #[test]
    fn series_digest_renders_as_labeled_gauges() {
        let mut s = Snapshot::new();
        s.push_series(crate::Series {
            name: "retain/quality.est_rank/2s".to_string(),
            columns: vec!["t_ms".into(), "p99".into()],
            rows: vec![vec![0.0, 4.0], vec![20.0, 6.0]],
        });
        let text = render_prometheus(&s);
        assert!(text
            .contains("obs_series_last{series=\"retain/quality.est_rank/2s\",column=\"p99\"} 6"));
        assert!(text.contains("obs_series_rows{series=\"retain/quality.est_rank/2s\"} 2"));
    }

    #[test]
    fn serve_endpoints_roundtrip() {
        let srv = serve("127.0.0.1:0", synthetic).expect("bind ephemeral");
        let addr = srv.local_addr();
        let get = |path: &str| -> (String, String) {
            let mut c = std::net::TcpStream::connect(addr).expect("connect");
            write!(c, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
            let mut resp = String::new();
            c.read_to_string(&mut resp).expect("read");
            let (head, body) = resp.split_once("\r\n\r\n").expect("header split");
            (head.to_string(), body.to_string())
        };
        let (head, body) = get("/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, "ok\n");
        let (head, body) = get("/metrics");
        assert!(head.contains("200"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("zmsq_inserts 100"));
        let (head, body) = get("/snapshot.json");
        assert!(head.contains("application/json"));
        let parsed = Snapshot::from_json(&body).expect("snapshot json parses");
        assert_eq!(parsed.counter("zmsq.inserts"), Some(100));
        let (head, _) = get("/nope");
        assert!(head.contains("404"));
        srv.stop();
    }

    #[test]
    fn serve_rejects_non_get() {
        let srv = serve("127.0.0.1:0", Snapshot::new).unwrap();
        let mut c = std::net::TcpStream::connect(srv.local_addr()).unwrap();
        write!(c, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        c.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 405"));
    }
}
