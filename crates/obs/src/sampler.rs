//! Background sampler: probes caller-supplied instantaneous values
//! (queue depth, set occupancy, pool fill, rank-error estimate) on a
//! fixed interval into a time [`Series`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::retain::Retention;

/// A sampled time series: `rows[i][0]` is milliseconds since
/// [`Sampler::start`], remaining columns follow [`Series::columns`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Series {
    /// Series name (used in the JSON `series` array).
    pub name: String,
    /// Column names; the first is always `t_ms`.
    pub columns: Vec<String>,
    /// Sample rows, one per tick.
    pub rows: Vec<Vec<f64>>,
}

/// A background sampling thread; stop it to collect the [`Series`].
///
/// ```
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let depth = Arc::new(AtomicU64::new(0));
/// let probe = { let d = Arc::clone(&depth); move || vec![d.load(Ordering::Relaxed) as f64] };
/// let s = obs::Sampler::start("depth", std::time::Duration::from_millis(1), &["len"], probe);
/// depth.store(9, Ordering::Relaxed);
/// std::thread::sleep(std::time::Duration::from_millis(10));
/// let series = s.stop();
/// assert_eq!(series.columns[0], "t_ms");
/// assert!(!series.rows.is_empty());
/// ```
pub struct Sampler {
    stop: Arc<AtomicBool>,
    out: Arc<Mutex<Series>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Spawn a sampler calling `probe` every `interval`; `probe`
    /// returns one value per entry of `columns`.
    pub fn start(
        name: &str,
        interval: Duration,
        columns: &[&str],
        probe: impl FnMut() -> Vec<f64> + Send + 'static,
    ) -> Self {
        Self::start_inner(name, interval, columns, probe, None)
    }

    /// As [`start`](Self::start), additionally feeding every sample
    /// into a fresh multi-tier [`Retention`]
    /// ([`default_tiers`](crate::retain::default_tiers)) that is
    /// registered with the global [`crate::retain`] export list — so a
    /// live scrape sees the downsampled history while the run is still
    /// going. The retention handle is also returned for direct use.
    pub fn start_retained(
        name: &str,
        interval: Duration,
        columns: &[&str],
        probe: impl FnMut() -> Vec<f64> + Send + 'static,
    ) -> (Self, Arc<Retention>) {
        let retain = Arc::new(Retention::new(
            name,
            columns,
            &crate::retain::default_tiers(),
        ));
        crate::retain::keep(Arc::clone(&retain));
        let sampler = Self::start_inner(name, interval, columns, probe, Some(Arc::clone(&retain)));
        (sampler, retain)
    }

    fn start_inner(
        name: &str,
        interval: Duration,
        columns: &[&str],
        mut probe: impl FnMut() -> Vec<f64> + Send + 'static,
        retain: Option<Arc<Retention>>,
    ) -> Self {
        let mut cols = vec!["t_ms".to_string()];
        cols.extend(columns.iter().map(|c| c.to_string()));
        let out = Arc::new(Mutex::new(Series {
            name: name.to_string(),
            columns: cols,
            rows: Vec::new(),
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let (out2, stop2) = (Arc::clone(&out), Arc::clone(&stop));
        let handle = std::thread::Builder::new()
            .name(format!("obs-sampler-{name}"))
            .spawn(move || {
                let t0 = Instant::now();
                let mut next = t0;
                while !stop2.load(Ordering::Acquire) {
                    let mut row = vec![t0.elapsed().as_secs_f64() * 1e3];
                    row.extend(probe());
                    if let Some(r) = &retain {
                        r.push(row[0], &row[1..]);
                    }
                    out2.lock().unwrap().rows.push(row);
                    next += interval;
                    // Sleep in short slices so stop() is responsive even
                    // with coarse intervals.
                    while !stop2.load(Ordering::Acquire) {
                        let now = Instant::now();
                        if now >= next {
                            break;
                        }
                        std::thread::sleep((next - now).min(Duration::from_millis(5)));
                    }
                }
            })
            .expect("spawn obs sampler");
        Self {
            stop,
            out,
            handle: Some(handle),
        }
    }

    /// Stop the thread and return the collected series.
    pub fn stop(mut self) -> Series {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.out.lock().unwrap())
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_on_interval_and_stops() {
        let s = Sampler::start("test", Duration::from_millis(2), &["a", "b"], || {
            vec![1.0, 2.0]
        });
        std::thread::sleep(Duration::from_millis(25));
        let series = s.stop();
        assert_eq!(series.columns, ["t_ms", "a", "b"]);
        assert!(series.rows.len() >= 3, "only {} rows", series.rows.len());
        assert!(series.rows.iter().all(|r| r.len() == 3));
        // Time column is nondecreasing.
        assert!(series.rows.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn retained_sampler_feeds_tiers() {
        let (s, r) = Sampler::start_retained(
            "retained-sampler-test",
            Duration::from_millis(2),
            &["v"],
            || vec![3.0],
        );
        std::thread::sleep(Duration::from_millis(20));
        let series = s.stop();
        assert!(!series.rows.is_empty());
        let tiers = r.series();
        assert_eq!(tiers[0].name, "retained-sampler-test/2s");
        assert!(!tiers[0].rows.is_empty(), "fast tier saw the samples");
        assert_eq!(tiers[0].rows[0][1], 3.0);
        // And the global export list can see it too.
        let mut snap = crate::Snapshot::new();
        crate::retain::collect_into(&mut snap);
        assert!(snap
            .series
            .iter()
            .any(|t| t.name.starts_with("retained-sampler-test/")));
    }

    #[test]
    fn drop_without_stop_joins_thread() {
        let s = Sampler::start("drop", Duration::from_millis(1), &["x"], || vec![0.0]);
        drop(s); // must not hang or leak a running thread
    }
}
