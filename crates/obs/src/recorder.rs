//! The flight recorder: per-thread lock-free ring buffers of fixed-size
//! trace events, merged into one time-ordered trace on [`dump`].
//!
//! Hot-path call sites go through [`crate::trace_event!`], which
//! compiles to nothing without the `obs-trace` feature — the module
//! itself is always available so dump paths (panic recovery, chaos
//! failures) need no feature gates.
//!
//! Each thread owns one ring; a record is three `Relaxed` stores plus a
//! `Release` index bump — no locks, no allocation after the first event
//! on a thread. Readers ([`dump`]) may observe a torn event while its
//! writer is mid-record; flight-recorder semantics accept that (at most
//! one event per live thread, and only at the trace's leading edge).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::write_escaped;

/// Events stored per thread before the ring wraps.
pub const RING_CAP: usize = 4096;

/// What happened, compactly. Payload meaning is per-kind: `a` is a
/// small operand (node level, woken count), `b` a large one (priority,
/// scanned hazards).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum EventKind {
    Insert = 1,
    Extract = 2,
    PoolHit = 3,
    PoolMiss = 4,
    PoolRefill = 5,
    RootAccess = 6,
    FutexWait = 7,
    FutexWake = 8,
    SpuriousWake = 9,
    HazardScan = 10,
    ProtectRetry = 11,
    Retire = 12,
    Reclaim = 13,
    PanicRecovery = 14,
    LockFail = 15,
    Split = 16,
    TreeGrow = 17,
    Sample = 18,
    WatchdogStall = 19,
    /// A [`crate::span!`] scope opened; `a` is the
    /// [`crate::span::SpanPhase`] id.
    SpanBegin = 20,
    /// A [`crate::span!`] scope closed; `a` is the
    /// [`crate::span::SpanPhase`] id.
    SpanEnd = 21,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Self::Insert,
            2 => Self::Extract,
            3 => Self::PoolHit,
            4 => Self::PoolMiss,
            5 => Self::PoolRefill,
            6 => Self::RootAccess,
            7 => Self::FutexWait,
            8 => Self::FutexWake,
            9 => Self::SpuriousWake,
            10 => Self::HazardScan,
            11 => Self::ProtectRetry,
            12 => Self::Retire,
            13 => Self::Reclaim,
            14 => Self::PanicRecovery,
            15 => Self::LockFail,
            16 => Self::Split,
            17 => Self::TreeGrow,
            18 => Self::Sample,
            19 => Self::WatchdogStall,
            20 => Self::SpanBegin,
            21 => Self::SpanEnd,
            _ => return None,
        })
    }

    /// Stable lowercase name used in the JSON dump.
    pub fn name(self) -> &'static str {
        match self {
            Self::Insert => "insert",
            Self::Extract => "extract",
            Self::PoolHit => "pool_hit",
            Self::PoolMiss => "pool_miss",
            Self::PoolRefill => "pool_refill",
            Self::RootAccess => "root_access",
            Self::FutexWait => "futex_wait",
            Self::FutexWake => "futex_wake",
            Self::SpuriousWake => "spurious_wake",
            Self::HazardScan => "hazard_scan",
            Self::ProtectRetry => "protect_retry",
            Self::Retire => "retire",
            Self::Reclaim => "reclaim",
            Self::PanicRecovery => "panic_recovery",
            Self::LockFail => "lock_fail",
            Self::Split => "split",
            Self::TreeGrow => "tree_grow",
            Self::Sample => "sample",
            Self::WatchdogStall => "watchdog_stall",
            Self::SpanBegin => "span_begin",
            Self::SpanEnd => "span_end",
        }
    }
}

/// One merged trace event as returned by [`dump`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process-wide recorder epoch.
    pub t_ns: u64,
    /// Recorder-assigned id of the writing thread (first-use order).
    pub thread: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Small payload (meaning is per-kind).
    pub a: u32,
    /// Large payload (meaning is per-kind).
    pub b: u64,
}

struct ThreadRing {
    thread: u32,
    /// Total events ever written (index = written % RING_CAP).
    written: AtomicU64,
    ts: Box<[AtomicU64]>,
    /// kind in bits 32.., `a` payload in bits ..32.
    meta: Box<[AtomicU64]>,
    b: Box<[AtomicU64]>,
}

impl ThreadRing {
    fn new(thread: u32) -> Self {
        let mk = || {
            (0..RING_CAP)
                .map(|_| AtomicU64::new(0))
                .collect::<Box<[_]>>()
        };
        Self {
            thread,
            written: AtomicU64::new(0),
            ts: mk(),
            meta: mk(),
            b: mk(),
        }
    }

    #[inline]
    fn push(&self, t_ns: u64, kind: EventKind, a: u32, b: u64) {
        let n = self.written.load(Ordering::Relaxed);
        let i = (n % RING_CAP as u64) as usize;
        self.ts[i].store(t_ns, Ordering::Relaxed);
        self.meta[i].store(((kind as u64) << 32) | a as u64, Ordering::Relaxed);
        self.b[i].store(b, Ordering::Relaxed);
        // Publish after the slot contents for same-thread signal safety;
        // cross-thread readers tolerate torn events by design.
        self.written.store(n + 1, Ordering::Release);
    }

    fn drain_into(&self, out: &mut Vec<Event>) {
        let written = self.written.load(Ordering::Acquire);
        let valid = written.min(RING_CAP as u64) as usize;
        for i in 0..valid {
            let meta = self.meta[i].load(Ordering::Relaxed);
            let Some(kind) = EventKind::from_u8((meta >> 32) as u8) else {
                continue; // torn or unwritten slot
            };
            out.push(Event {
                t_ns: self.ts[i].load(Ordering::Relaxed),
                thread: self.thread,
                kind,
                a: meta as u32,
                b: self.b[i].load(Ordering::Relaxed),
            });
        }
    }
}

fn rings() -> &'static Mutex<Vec<std::sync::Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<std::sync::Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the recorder epoch (first use in this process).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

/// Record one event into this thread's ring. Prefer
/// [`crate::trace_event!`] at instrumentation sites — it compiles out
/// when tracing is disabled; this function always records.
#[inline]
pub fn record(kind: EventKind, a: u32, b: u64) {
    use std::cell::OnceCell;
    use std::sync::Arc;
    thread_local! {
        static RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
    }
    let t_ns = now_ns();
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
            rings().lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        ring.push(t_ns, kind, a, b);
    });
}

/// Merge every thread's ring into one trace sorted by timestamp
/// (ties broken by thread id). Rings are not cleared.
pub fn dump() -> Vec<Event> {
    let rings = rings().lock().unwrap();
    let mut out = Vec::new();
    for r in rings.iter() {
        r.drain_into(&mut out);
    }
    out.sort_by_key(|e| (e.t_ns, e.thread));
    out
}

/// Total events ever recorded on any thread (wrapped events included).
pub fn recorded_total() -> u64 {
    rings()
        .lock()
        .unwrap()
        .iter()
        .map(|r| r.written.load(Ordering::Acquire))
        .sum()
}

/// Reset every ring (test isolation). Events recorded concurrently with
/// the reset may survive.
pub fn clear() {
    let rings = rings().lock().unwrap();
    for r in rings.iter() {
        r.written.store(0, Ordering::Release);
        for m in r.meta.iter() {
            m.store(0, Ordering::Relaxed);
        }
    }
}

/// Render the merged trace as a JSON document:
/// `{"recorded_total": N, "events": [{"t_ns", "thread", "kind", "a", "b"}…]}`.
pub fn dump_json() -> String {
    use std::fmt::Write as _;
    let events = dump();
    let mut out = String::with_capacity(64 + events.len() * 64);
    let _ = write!(
        out,
        "{{\"recorded_total\": {}, \"events\": [",
        recorded_total()
    );
    for (i, e) in events.iter().enumerate() {
        out.push_str(if i == 0 { "\n  " } else { ",\n  " });
        let _ = write!(
            out,
            "{{\"t_ns\": {}, \"thread\": {}, \"kind\": ",
            e.t_ns, e.thread
        );
        write_escaped(&mut out, e.kind.name());
        let _ = write!(out, ", \"a\": {}, \"b\": {}}}", e.a, e.b);
    }
    out.push_str("\n]}\n");
    out
}

/// Write [`dump_json`] to `path`, creating parent directories.
pub fn dump_to_file(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, dump_json())
}

/// Best-effort failure hook: record a [`EventKind::PanicRecovery`]
/// event, then (when tracing is compiled in) write the merged trace to
/// `target/obs-dump-<tag>.json` and print the path to stderr. Errors
/// are swallowed — this runs on unwind paths.
pub fn dump_on_failure(tag: &str) {
    record(EventKind::PanicRecovery, 0, 0);
    if !crate::TRACE_ENABLED {
        return;
    }
    let safe: String = tag
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = std::path::PathBuf::from(format!("target/obs-dump-{safe}.json"));
    if dump_to_file(&path).is_ok() {
        eprintln!("obs: flight recorder dumped to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Recorder state is process-global; serialize these tests.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn records_and_dumps_in_time_order() {
        let _g = lock();
        clear();
        record(EventKind::Insert, 3, 77);
        record(EventKind::PoolHit, 0, 5);
        record(EventKind::Extract, 1, 78);
        let mine: Vec<Event> = dump()
            .into_iter()
            .filter(|e| e.b == 77 || e.b == 5 || e.b == 78)
            .collect();
        assert_eq!(mine.len(), 3);
        assert!(mine.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(mine[0].kind, EventKind::Insert);
        assert_eq!(mine[0].a, 3);
    }

    #[test]
    fn ring_wraps_keeping_capacity_events() {
        let _g = lock();
        clear();
        let n = RING_CAP as u64 + 500;
        for i in 0..n {
            record(EventKind::Sample, 0, i);
        }
        let mine: Vec<Event> = dump()
            .into_iter()
            .filter(|e| e.kind == EventKind::Sample)
            .collect();
        // This thread's ring holds exactly RING_CAP of its n events;
        // other tests' threads may contribute Sample events only via
        // this test (unique kind here), so the count is exact.
        assert_eq!(mine.len(), RING_CAP);
        // The survivors are the *latest* RING_CAP events.
        let min_b = mine.iter().map(|e| e.b).min().unwrap();
        assert_eq!(min_b, 500);
        assert!(recorded_total() >= n);
    }

    #[test]
    fn multi_thread_merge_is_time_ordered_with_thread_tiebreak() {
        let _g = lock();
        clear();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..1000u64 {
                        record(EventKind::Retire, t as u32, i);
                    }
                });
            }
        });
        let all: Vec<Event> = dump()
            .into_iter()
            .filter(|e| e.kind == EventKind::Retire)
            .collect();
        assert_eq!(all.len(), 4000);
        assert!(
            all.windows(2)
                .all(|w| (w[0].t_ns, w[0].thread) <= (w[1].t_ns, w[1].thread)),
            "merged trace not sorted"
        );
        // Per-writer events must keep their program order after the merge.
        for a in 0..4u32 {
            let per: Vec<u64> = all.iter().filter(|e| e.a == a).map(|e| e.b).collect();
            assert_eq!(per.len(), 1000);
            assert!(per.windows(2).all(|w| w[0] < w[1]), "writer {a} reordered");
        }
    }

    #[test]
    fn dump_json_parses() {
        let _g = lock();
        clear();
        record(EventKind::FutexWait, 2, 9);
        let v = crate::json::parse(&dump_json()).expect("dump JSON parses");
        assert!(v.get("recorded_total").unwrap().as_f64().unwrap() >= 1.0);
        let events = v.get("events").unwrap().as_arr().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("kind") == Some(&crate::json::Value::Str("futex_wait".into()))));
    }

    #[test]
    fn dump_to_file_writes() {
        let _g = lock();
        record(EventKind::Reclaim, 0, 1);
        let path = std::path::PathBuf::from("target/obs-test-dump.json");
        dump_to_file(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        crate::json::parse(&body).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
