//! Minimal JSON support: string escaping for the writers and a small
//! recursive-descent parser so tests (and the CI smoke job) can assert
//! that emitted `*.metrics.json` files actually parse.
//!
//! The workspace is dependency-free by policy, so this is deliberately
//! tiny: enough of RFC 8259 for the documents this crate produces
//! (objects, arrays, strings, finite numbers, booleans, null).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` (JSON has no NaN/Inf; those become `null`).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (sorted keys).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object contents (sorted by key), if this is an object.
    pub fn as_obj(&self) -> Option<&std::collections::BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Value, String> {
    let b = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let k = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let v = parse_value(b, pos)?;
                m.insert(k, v);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut v = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(v));
            }
            loop {
                v.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(v));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number {s:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    let mut buf = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                out.push_str(std::str::from_utf8(&buf).map_err(|e| e.to_string())?);
                return Ok(out);
            }
            b'\\' => {
                out.push_str(std::str::from_utf8(&buf).map_err(|e| e.to_string())?);
                buf.clear();
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs unsupported (never emitted here).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("bad escape \\{}", *c as char)),
                }
            }
            c => buf.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_escapes() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\u{1}");
        let v = parse(&s).unwrap();
        assert_eq!(v, Value::Str("a\"b\\c\nd\u{1}".into()));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Str("x".into())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn nonfinite_becomes_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut s = String::new();
        write_f64(&mut s, 0.25);
        assert_eq!(s, "0.25");
    }
}
