//! Always-on metric primitives: striped counters, gauges, and a named
//! registry.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::Histogram;
use crate::snapshot::Snapshot;

/// Number of cache-line stripes per [`Counter`].
pub const STRIPES: usize = 16;

/// One cache line worth of counter cell; 128 bytes covers the adjacent
/// line prefetcher pair on x86.
#[repr(align(128))]
pub(crate) struct PadCell(pub(crate) AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

/// The stripe this thread writes to, assigned round-robin on first use
/// and cached in a TLS cell.
///
/// A previous design hashed `ThreadId` through `DefaultHasher`, which
/// clusters stripes badly under small thread counts (SipHash over
/// near-sequential ids has no uniformity guarantee mod 16); round-robin
/// assignment is perfectly balanced by construction: `n` live threads
/// started back-to-back occupy `min(n, STRIPES)` distinct stripes.
#[inline]
pub(crate) fn stripe_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
            c.set(v);
        }
        v
    })
}

/// A monotone counter striped over [`STRIPES`] cache lines.
///
/// `const`-constructible so instrumented crates can declare
/// `static WAITS: Counter = Counter::new();` with no registration or
/// lazy-init branch on the hot path. Reads sum the stripes.
pub struct Counter {
    cells: [PadCell; STRIPES],
}

impl Counter {
    /// New zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            cells: [const { PadCell(AtomicU64::new(0)) }; STRIPES],
        }
    }

    /// Add `n` to this thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum of all stripes. Exact on a quiescent counter; monotone
    /// best-effort during concurrent writes.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Alias for [`Counter::get`] (drop-in for the old `Striped` API).
    pub fn sum(&self) -> u64 {
        self.get()
    }

    /// Per-stripe values, for distribution tests.
    #[doc(hidden)]
    pub fn stripe_loads(&self) -> [u64; STRIPES] {
        std::array::from_fn(|i| self.cells[i].0.load(Ordering::Relaxed))
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A signed instantaneous value (queue depth, pool fill, …).
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New zeroed gauge (usable in `static` position).
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    hists: Vec<(String, Arc<Histogram>)>,
}

/// A set of named metrics created at run time (bench harnesses, tests).
///
/// Hot paths touch only the returned `Arc`'d metric — the registry lock
/// is taken on creation and snapshot, never on record.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.lock().unwrap();
        if let Some((_, c)) = g.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        g.counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.inner.lock().unwrap();
        if let Some((_, x)) = g.gauges.iter().find(|(n, _)| n == name) {
            return Arc::clone(x);
        }
        let x = Arc::new(Gauge::new());
        g.gauges.push((name.to_string(), Arc::clone(&x)));
        x
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.inner.lock().unwrap();
        if let Some((_, h)) = g.hists.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        g.hists.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.lock().unwrap();
        let mut s = Snapshot::new();
        for (n, c) in &g.counters {
            s.push_counter(n, c.get());
        }
        for (n, x) in &g.gauges {
            s.push_gauge(n, x.get());
        }
        for (n, h) in &g.hists {
            s.push_hist(n, h);
        }
        s
    }
}

/// The process-global registry (used by the bench harness to attach
/// per-benchmark sample histograms).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_exactly_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(c.sum(), 80_000);
    }

    #[test]
    fn round_robin_stripes_are_balanced() {
        // Satellite regression: DefaultHasher-over-ThreadId clustered
        // stripes under small thread counts. Round-robin assignment must
        // spread K short-lived threads over min(K, STRIPES) stripes with
        // per-stripe population differing by at most ceil(K/STRIPES)
        // (other tests' threads may interleave in the global sequence,
        // so we check spread, not an exact partition).
        let c = Arc::new(Counter::new());
        const THREADS: usize = 64;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || c.incr()));
        }
        for h in handles {
            h.join().unwrap();
        }
        let loads = c.stripe_loads();
        assert_eq!(loads.iter().sum::<u64>(), THREADS as u64);
        let nonzero = loads.iter().filter(|&&v| v > 0).count();
        assert_eq!(
            nonzero, STRIPES,
            "64 round-robin threads must cover all 16 stripes: {loads:?}"
        );
        let max = loads.iter().max().unwrap();
        // Perfect balance is 4 per stripe; allow slack for foreign
        // threads shifting the round-robin phase mid-test.
        assert!(*max <= 9, "stripe loads too skewed: {loads:?}");
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn registry_dedups_by_name_and_snapshots() {
        let r = Registry::new();
        let a = r.counter("ops");
        let b = r.counter("ops");
        a.add(2);
        b.add(3);
        r.gauge("depth").set(-4);
        r.histogram("lat").record(100);
        let s = r.snapshot();
        assert_eq!(s.counter("ops"), Some(5));
        assert_eq!(s.gauge("depth"), Some(-4));
        assert_eq!(s.hist("lat").unwrap().count, 1);
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("obs-test.global").add(7);
        assert!(global().snapshot().counter("obs-test.global").unwrap() >= 7);
    }
}
