//! Fixed-memory time-series retention: multi-resolution rings fed by
//! the background [`Sampler`](crate::Sampler), so a live scrape sees
//! *history*, not just the current instant.
//!
//! A [`Retention`] holds one ring per [`TierSpec`] — by default a
//! high-resolution short window plus two downsampled long windows
//! (see [`default_tiers`]):
//!
//! | tier | bucket | capacity | window | memory (3 columns) |
//! |------|--------|----------|--------|--------------------|
//! | `2s` | 20 ms  | 100 rows | 2 s    | ≈ 3.2 KiB          |
//! | `1m` | 1 s    | 60 rows  | 1 min  | ≈ 1.9 KiB          |
//! | `1h` | 60 s   | 60 rows  | 1 h    | ≈ 1.9 KiB          |
//!
//! (Each row is `1 + columns` `f64`s; memory is
//! `rows × (columns + 1) × 8` bytes per tier, fixed for the process
//! lifetime — the rings never grow.)
//!
//! Every [`push`](Retention::push) feeds *all* tiers: samples falling
//! inside a tier's current bucket are averaged (downsampled merge);
//! when a sample crosses the bucket boundary the mean row is sealed
//! into the ring, evicting the oldest row once the ring is full.
//!
//! Retentions registered with [`keep`] are exported by
//! [`collect_into`] as ordinary snapshot `series` named
//! `<name>/<tier>` — visible in the JSON dump, `/snapshot.json`, and
//! (digested) `/metrics`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::sampler::Series;

/// One retention tier: bucket `interval` × ring `capacity`.
#[derive(Clone, Debug)]
pub struct TierSpec {
    /// Short display label (`2s`, `1m`, `1h`) suffixed onto the series
    /// name.
    pub label: &'static str,
    /// Downsampling bucket width: all samples within one interval merge
    /// into a single mean row.
    pub interval: Duration,
    /// Ring capacity in rows; the retained window is
    /// `interval * capacity`.
    pub capacity: usize,
}

/// The default 2s/1m/1h tier ladder (see the module table).
pub fn default_tiers() -> Vec<TierSpec> {
    vec![
        TierSpec {
            label: "2s",
            interval: Duration::from_millis(20),
            capacity: 100,
        },
        TierSpec {
            label: "1m",
            interval: Duration::from_secs(1),
            capacity: 60,
        },
        TierSpec {
            label: "1h",
            interval: Duration::from_secs(60),
            capacity: 60,
        },
    ]
}

struct Tier {
    spec: TierSpec,
    /// Sealed mean rows, oldest first; `rows.len() <= spec.capacity`.
    rows: VecDeque<Vec<f64>>,
    /// Start of the bucket currently accumulating, ms.
    bucket_start_ms: f64,
    /// Per-column sums of the open bucket (t_ms column included).
    acc: Vec<f64>,
    acc_n: u64,
}

impl Tier {
    fn new(spec: TierSpec, width: usize) -> Self {
        Self {
            spec,
            rows: VecDeque::new(),
            bucket_start_ms: 0.0,
            acc: vec![0.0; width],
            acc_n: 0,
        }
    }

    fn seal(&mut self) {
        if self.acc_n == 0 {
            return;
        }
        let n = self.acc_n as f64;
        let row: Vec<f64> = self.acc.iter().map(|s| s / n).collect();
        if self.rows.len() == self.spec.capacity {
            self.rows.pop_front();
        }
        self.rows.push_back(row);
        self.acc.iter_mut().for_each(|s| *s = 0.0);
        self.acc_n = 0;
    }

    fn push(&mut self, row: &[f64]) {
        let t_ms = row[0];
        let width = self.spec.interval.as_secs_f64() * 1e3;
        if self.acc_n > 0 && t_ms - self.bucket_start_ms >= width {
            self.seal();
        }
        if self.acc_n == 0 {
            // Align the bucket start to the tier grid so idle gaps do
            // not smear one bucket across them.
            self.bucket_start_ms = if width > 0.0 {
                (t_ms / width).floor() * width
            } else {
                t_ms
            };
        }
        for (s, v) in self.acc.iter_mut().zip(row) {
            *s += v;
        }
        self.acc_n += 1;
    }

    /// Ring rows plus the open (partial) bucket's running mean, so
    /// short runs still show data in coarse tiers.
    fn rows_with_partial(&self) -> Vec<Vec<f64>> {
        let mut out: Vec<Vec<f64>> = self.rows.iter().cloned().collect();
        if self.acc_n > 0 {
            let n = self.acc_n as f64;
            out.push(self.acc.iter().map(|s| s / n).collect());
        }
        out
    }
}

struct Inner {
    columns: Vec<String>,
    tiers: Vec<Tier>,
}

/// Multi-tier fixed-memory retention for one sampled series.
pub struct Retention {
    name: String,
    inner: Mutex<Inner>,
}

impl Retention {
    /// Build a retention named `name` over `columns` (without the
    /// implicit leading `t_ms`), with the given tier ladder.
    pub fn new(name: &str, columns: &[&str], tiers: &[TierSpec]) -> Self {
        let mut cols = vec!["t_ms".to_string()];
        cols.extend(columns.iter().map(|c| c.to_string()));
        let width = cols.len();
        Self {
            name: name.to_string(),
            inner: Mutex::new(Inner {
                columns: cols,
                tiers: tiers.iter().map(|t| Tier::new(t.clone(), width)).collect(),
            }),
        }
    }

    /// The retained series' base name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feed one sample row: `t_ms` since the feeding sampler's epoch
    /// plus one value per column. Rows with the wrong arity are
    /// ignored (a probe bug must not poison the rings).
    pub fn push(&self, t_ms: f64, values: &[f64]) {
        let mut inner = self.inner.lock().unwrap();
        if values.len() + 1 != inner.columns.len() {
            return;
        }
        let mut row = Vec::with_capacity(values.len() + 1);
        row.push(t_ms);
        row.extend_from_slice(values);
        for tier in &mut inner.tiers {
            tier.push(&row);
        }
    }

    /// Export one [`Series`] per tier, named `<name>/<tier>`, each
    /// including the open partial bucket as its last row.
    pub fn series(&self) -> Vec<Series> {
        let inner = self.inner.lock().unwrap();
        inner
            .tiers
            .iter()
            .map(|t| Series {
                name: format!("{}/{}", self.name, t.spec.label),
                columns: inner.columns.clone(),
                rows: t.rows_with_partial(),
            })
            .collect()
    }
}

fn global() -> &'static Mutex<Vec<Arc<Retention>>> {
    static GLOBAL: OnceLock<Mutex<Vec<Arc<Retention>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a retention with the process-global export list read by
/// [`collect_into`] (and therefore by `/metrics` / `/snapshot.json`).
pub fn keep(r: Arc<Retention>) {
    global().lock().unwrap().push(r);
}

/// Drop every globally registered retention (test isolation).
pub fn clear_global() {
    global().lock().unwrap().clear();
}

/// Append every registered retention's tier series to `snap`.
pub fn collect_into(snap: &mut crate::Snapshot) {
    let list = global().lock().unwrap();
    for r in list.iter() {
        for s in r.series() {
            snap.push_series(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier() -> Retention {
        Retention::new(
            "t/depth",
            &["len"],
            &[
                TierSpec {
                    label: "fast",
                    interval: Duration::from_millis(10),
                    capacity: 4,
                },
                TierSpec {
                    label: "slow",
                    interval: Duration::from_millis(100),
                    capacity: 2,
                },
            ],
        )
    }

    #[test]
    fn downsamples_into_bucket_means() {
        let r = two_tier();
        // Two samples inside one 10ms bucket, then one in the next.
        r.push(1.0, &[10.0]);
        r.push(5.0, &[20.0]);
        r.push(12.0, &[40.0]);
        let s = r.series();
        assert_eq!(s[0].name, "t/depth/fast");
        assert_eq!(s[0].columns, ["t_ms", "len"]);
        // Sealed mean of the first bucket plus the open partial bucket.
        assert_eq!(s[0].rows.len(), 2);
        assert_eq!(s[0].rows[0][1], 15.0, "mean of 10 and 20");
        assert_eq!(s[0].rows[1][1], 40.0, "partial bucket");
        // The slow tier still has everything in one open bucket.
        assert_eq!(s[1].name, "t/depth/slow");
        assert_eq!(s[1].rows.len(), 1);
        assert!((s[1].rows[0][1] - 70.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let r = two_tier();
        // 8 sealed fast-tier buckets into a capacity-4 ring (push a
        // trailing sample so the 8th bucket seals too).
        for i in 0..9 {
            r.push(i as f64 * 10.0, &[i as f64]);
        }
        let s = &r.series()[0];
        // 4 sealed + 1 partial.
        assert_eq!(s.rows.len(), 5);
        assert_eq!(s.rows[0][1], 4.0, "oldest sealed rows evicted");
        // Time column nondecreasing.
        assert!(s.rows.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn wrong_arity_rows_are_ignored() {
        let r = two_tier();
        r.push(0.0, &[1.0, 2.0]); // too many columns
        r.push(0.0, &[]); // too few
        assert!(r.series()[0].rows.is_empty());
    }

    #[test]
    fn idle_gap_starts_a_fresh_bucket() {
        let r = two_tier();
        r.push(0.0, &[10.0]);
        r.push(1000.0, &[50.0]); // long gap: seals bucket 0, opens a new one
        let s = &r.series()[0];
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0][1], 10.0);
        assert_eq!(s.rows[1][1], 50.0);
        // The fresh bucket is aligned to the tier grid, not smeared.
        assert_eq!(s.rows[1][0], 1000.0);
    }

    #[test]
    fn global_registry_collects() {
        // Other tests share the global list; use a unique name.
        let r = Arc::new(Retention::new(
            "global-collect-test",
            &["x"],
            &default_tiers(),
        ));
        r.push(0.0, &[7.0]);
        keep(Arc::clone(&r));
        let mut snap = crate::Snapshot::new();
        collect_into(&mut snap);
        assert!(snap
            .series
            .iter()
            .any(|s| s.name == "global-collect-test/2s" && s.rows[0][1] == 7.0));
    }

    #[test]
    fn default_tiers_memory_is_bounded() {
        // The DESIGN.md math: rows × (cols + 1) × 8 bytes per tier.
        let tiers = default_tiers();
        let bytes: usize = tiers.iter().map(|t| t.capacity * (2 + 1) * 8).sum();
        assert!(bytes < 8 * 1024, "3-column ladder stays under 8 KiB");
    }
}
