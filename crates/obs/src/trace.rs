//! Chrome `trace_event` export for the flight recorder.
//!
//! [`export_chrome`] converts a merged recorder trace into the JSON
//! format understood by `chrome://tracing` and <https://ui.perfetto.dev>:
//! span begin/end pairs ([`EventKind::SpanBegin`]/[`EventKind::SpanEnd`])
//! become `"X"` complete events with a duration, every other event kind
//! becomes an `"i"` instant event. Each recorder thread maps to a `tid`
//! so the per-phase nesting renders as stacked slices.
//!
//! Robustness over strictness: a ring that wrapped mid-span leaves an
//! end without a begin (dropped) or a begin without an end (dropped at
//! the close of its thread's stream) — flight-recorder semantics, the
//! surviving pairs are what matter.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::json::write_escaped;
use crate::recorder::{dump, Event, EventKind};
use crate::span::SpanPhase;

/// One Chrome `trace_event` entry produced by [`pair_spans`].
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Slice name (span phase name or event-kind name).
    pub name: &'static str,
    /// `"X"` (complete, has `dur`) or `"i"` (instant).
    pub ph: char,
    /// Start, microseconds since the recorder epoch.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: f64,
    /// Recorder thread id.
    pub tid: u32,
}

/// Pair span begin/end events per thread (a stack, matching guard drop
/// order) and convert the merged trace into Chrome events. Events whose
/// pair fell off a wrapped ring are dropped; non-span kinds pass
/// through as instants.
pub fn pair_spans(events: &[Event]) -> Vec<ChromeEvent> {
    let mut out = Vec::with_capacity(events.len());
    // Per-thread stack of open spans: (phase, begin ts_ns).
    let mut open: HashMap<u32, Vec<(u32, u64)>> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::SpanBegin => open.entry(e.thread).or_default().push((e.a, e.t_ns)),
            EventKind::SpanEnd => {
                let stack = open.entry(e.thread).or_default();
                // Pop until we find the matching phase: an unmatched
                // inner begin (its end fell off the ring) is discarded
                // rather than corrupting the nesting.
                while let Some((phase, begin)) = stack.pop() {
                    if phase != e.a {
                        continue;
                    }
                    let name = SpanPhase::from_u32(phase).map_or("span", SpanPhase::name);
                    out.push(ChromeEvent {
                        name,
                        ph: 'X',
                        ts_us: begin as f64 / 1_000.0,
                        dur_us: e.t_ns.saturating_sub(begin) as f64 / 1_000.0,
                        tid: e.thread,
                    });
                    break;
                }
            }
            kind => out.push(ChromeEvent {
                name: kind.name(),
                ph: 'i',
                ts_us: e.t_ns as f64 / 1_000.0,
                dur_us: 0.0,
                tid: e.thread,
            }),
        }
    }
    out
}

/// Render `events` as a Chrome `trace_event` JSON document
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` or
/// Perfetto.
pub fn export_chrome(events: &[Event]) -> String {
    let chrome = pair_spans(events);
    let mut out = String::with_capacity(64 + chrome.len() * 96);
    out.push_str("{\"traceEvents\": [");
    for (i, e) in chrome.iter().enumerate() {
        out.push_str(if i == 0 { "\n  " } else { ",\n  " });
        out.push_str("{\"name\": ");
        write_escaped(&mut out, e.name);
        let _ = write!(
            out,
            ", \"ph\": \"{}\", \"ts\": {:.3}, \"pid\": 1, \"tid\": {}",
            e.ph, e.ts_us, e.tid
        );
        if e.ph == 'X' {
            let _ = write!(out, ", \"dur\": {:.3}", e.dur_us);
        }
        if e.ph == 'i' {
            out.push_str(", \"s\": \"t\"");
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Dump the live flight recorder and write it as a Chrome trace to
/// `path`, creating parent directories. Meaningful only when the
/// `obs-trace` feature compiled span/trace call sites in (otherwise the
/// rings are empty and the file holds an empty `traceEvents` array).
pub fn export_chrome_to_file(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, export_chrome(&dump()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, thread: u32, kind: EventKind, a: u32) -> Event {
        Event {
            t_ns,
            thread,
            kind,
            a,
            b: 0,
        }
    }

    #[test]
    fn pairs_nested_spans_per_thread() {
        let events = vec![
            ev(1_000, 0, EventKind::SpanBegin, SpanPhase::Insert as u32),
            ev(2_000, 0, EventKind::SpanBegin, SpanPhase::TreeWalk as u32),
            ev(2_500, 1, EventKind::SpanBegin, SpanPhase::Extract as u32),
            ev(5_000, 0, EventKind::SpanEnd, SpanPhase::TreeWalk as u32),
            ev(6_000, 0, EventKind::SpanEnd, SpanPhase::Insert as u32),
            ev(7_000, 1, EventKind::SpanEnd, SpanPhase::Extract as u32),
        ];
        let chrome = pair_spans(&events);
        assert_eq!(chrome.len(), 3);
        let walk = chrome.iter().find(|c| c.name == "tree_walk").unwrap();
        assert_eq!(walk.ph, 'X');
        assert!((walk.ts_us - 2.0).abs() < 1e-9);
        assert!((walk.dur_us - 3.0).abs() < 1e-9);
        let ins = chrome.iter().find(|c| c.name == "insert").unwrap();
        assert!((ins.dur_us - 5.0).abs() < 1e-9);
        let ext = chrome.iter().find(|c| c.name == "extract").unwrap();
        assert_eq!(ext.tid, 1);
    }

    #[test]
    fn unmatched_ends_and_begins_are_dropped() {
        let events = vec![
            // End with no begin (begin fell off a wrapped ring).
            ev(1_000, 0, EventKind::SpanEnd, SpanPhase::Extract as u32),
            // Begin whose inner end was lost; outer end still pairs.
            ev(2_000, 0, EventKind::SpanBegin, SpanPhase::Insert as u32),
            ev(3_000, 0, EventKind::SpanBegin, SpanPhase::PoolClaim as u32),
            ev(4_000, 0, EventKind::SpanEnd, SpanPhase::Insert as u32),
            // Begin never closed.
            ev(5_000, 0, EventKind::SpanBegin, SpanPhase::SwapDown as u32),
        ];
        let chrome = pair_spans(&events);
        assert_eq!(chrome.len(), 1);
        assert_eq!(chrome[0].name, "insert");
        assert!((chrome[0].dur_us - 2.0).abs() < 1e-9);
    }

    #[test]
    fn non_span_events_become_instants() {
        let events = vec![ev(500, 2, EventKind::PoolRefill, 7)];
        let chrome = pair_spans(&events);
        assert_eq!(chrome.len(), 1);
        assert_eq!(chrome[0].ph, 'i');
        assert_eq!(chrome[0].name, "pool_refill");
    }

    #[test]
    fn export_json_parses_and_has_trace_events() {
        let events = vec![
            ev(1_000, 0, EventKind::SpanBegin, SpanPhase::Admission as u32),
            ev(1_500, 0, EventKind::SpanEnd, SpanPhase::Admission as u32),
            ev(2_000, 0, EventKind::RootAccess, 0),
        ];
        let body = export_chrome(&events);
        let v = crate::json::parse(&body).expect("chrome trace JSON parses");
        let arr = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("name"),
            Some(&crate::json::Value::Str("admission".into()))
        );
        assert!(arr[0].get("dur").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn empty_trace_exports_empty_array() {
        let body = export_chrome(&[]);
        let v = crate::json::parse(&body).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
