//! Log-linear (HDR-style) concurrent histogram.
//!
//! Fixed memory, `Relaxed`-atomic recording, no allocation after
//! construction. Buckets are log₂ octaves subdivided linearly into
//! [`SUB`] sub-buckets, so relative quantile error is bounded by half a
//! sub-bucket (≤ ~12.5% at `SUB_BITS = 3`); `min`/`max`/`sum` are exact.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
pub const SUB: usize = 1 << SUB_BITS;
const OCTAVES: usize = 64 - SUB_BITS as usize; // full u64 range
const BUCKETS: usize = OCTAVES * SUB;

/// Concurrent log-linear histogram of `u64` samples (latency in ns,
/// set sizes, scan lengths, …).
///
/// ```
/// use obs::Histogram;
/// let h = Histogram::new();
/// for v in [120u64, 80, 95, 4000, 110] { h.record(v); }
/// assert_eq!(h.snapshot().count, 5);
/// assert!(h.quantile(0.5) <= 128);
/// ```
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// New empty histogram (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of a sample: values below [`SUB`] map exactly, the
    /// rest to `(octave, linear sub-position)`.
    pub(crate) fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros();
        let sub = (v >> (octave - SUB_BITS)) as usize & (SUB - 1);
        (((octave as usize) - SUB_BITS as usize) * SUB + sub + SUB).min(BUCKETS - 1)
    }

    /// Lower edge of bucket `i` (the value reported for quantiles).
    pub(crate) fn bucket_floor(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        let i = i - SUB;
        let octave = (i / SUB) as u32 + SUB_BITS;
        let sub = (i % SUB) as u64;
        (1u64 << octave) + (sub << (octave - SUB_BITS))
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Approximate quantile `p ∈ [0, 1]`, reported as the floor of the
    /// bucket holding the target rank (accurate to the bucket width).
    pub fn quantile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_floor(i);
            }
        }
        self.max()
    }

    /// Fold another histogram into this one (bucket-wise add; min/max
    /// folded exactly).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Point-in-time copy with precomputed quantiles and the sparse
    /// (floor, count) bucket list.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let v = b.load(Ordering::Relaxed);
            if v != 0 {
                buckets.push((Self::bucket_floor(i), v));
            }
        }
        HistSnapshot {
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Owned, non-atomic copy of a [`Histogram`], as embedded in
/// [`crate::Snapshot`] and serialized to JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Median (bucket floor).
    pub p50: u64,
    /// 90th percentile (bucket floor).
    pub p90: u64,
    /// 99th percentile (bucket floor).
    pub p99: u64,
    /// 99.9th percentile (bucket floor).
    pub p999: u64,
    /// Sparse `(bucket_floor, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean of the snapshot (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile `p ∈ [0, 1]` recomputed from the sparse bucket list
    /// (same semantics as [`Histogram::quantile`]: the floor of the
    /// bucket holding the target rank).
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(floor, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return floor;
            }
        }
        self.max
    }

    /// Fold `other` into this snapshot: merge the sparse bucket lists
    /// (summing counts at equal floors), add counts/sums, fold min/max
    /// exactly, and recompute the quantiles from the merged buckets.
    /// Lets an aggregator (the sharded queue, a bench) combine per-shard
    /// histograms into one without access to the live atomics.
    pub fn absorb(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(fa, ca)), Some(&&(fb, cb))) => {
                    if fa == fb {
                        merged.push((fa, ca + cb));
                        a.next();
                        b.next();
                    } else if fa < fb {
                        merged.push((fa, ca));
                        a.next();
                    } else {
                        merged.push((fb, cb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.buckets = merged;
        self.p50 = self.quantile(0.50);
        self.p90 = self.quantile(0.90);
        self.p99 = self.quantile(0.99);
        self.p999 = self.quantile(0.999);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault::DetRng;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn bucket_boundaries_monotone_and_tight() {
        // bucket_of must be monotone, bucket_floor(bucket_of(x)) <= x,
        // and x must lie within one sub-bucket width of the floor.
        let mut prev = 0;
        for exp in 0..63u32 {
            for off in 0..SUB as u64 {
                let x = (1u64 << exp) + off * ((1u64 << exp) / SUB as u64);
                let b = Histogram::bucket_of(x);
                assert!(b >= prev, "bucket index not monotone at {x}");
                prev = b;
                let floor = Histogram::bucket_floor(b);
                assert!(floor <= x, "floor {floor} > sample {x}");
                let width = ((1u64 << exp) / SUB as u64).max(1);
                assert!(
                    x - floor < width + SUB as u64,
                    "sample {x} far above floor {floor}"
                );
            }
        }
        // Exact low range.
        for v in 0..SUB as u64 {
            assert_eq!(Histogram::bucket_floor(Histogram::bucket_of(v)), v);
        }
        // Extremes do not panic and land in-range.
        assert!(Histogram::bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_match_exact_sorted_reference() {
        // Seeded DetRng inputs over several magnitudes; the histogram
        // quantile must stay within one sub-bucket (12.5%) of the exact
        // order statistic.
        let mut rng = DetRng::seed_from_u64(0x0B5_0B5);
        let h = Histogram::new();
        let mut exact: Vec<u64> = Vec::with_capacity(50_000);
        for _ in 0..50_000 {
            // Log-uniform-ish: random magnitude 0..2^30, skewed low.
            let mag = rng.random_range(0u32..30);
            let v = (1u64 << mag) + rng.random_range(0u64..(1u64 << mag).max(1));
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for p in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((p * exact.len() as f64).ceil() as usize).max(1) - 1;
            let want = exact[rank] as f64;
            let got = h.quantile(p) as f64;
            // Bucket floor is a lower bound within one sub-bucket width.
            assert!(got <= want, "p{p}: floor {got} above exact {want}");
            assert!(
                got >= want / (1.0 + 1.0 / SUB as f64) - 1.0,
                "p{p}: got {got}, exact {want} — off by more than a sub-bucket"
            );
        }
        assert_eq!(h.max(), *exact.last().unwrap());
        assert_eq!(h.min(), exact[0]);
        let mean_exact = exact.iter().map(|&v| v as f64).sum::<f64>() / exact.len() as f64;
        assert!((h.mean() - mean_exact).abs() < 1e-6);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let mut rng = DetRng::seed_from_u64(7);
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for _ in 0..10_000 {
            let v = rng.random_range(1u64..1_000_000);
            if v.is_multiple_of(2) {
                a.record(v)
            } else {
                b.record(v)
            }
            both.record(v);
        }
        a.merge_from(&b);
        let (sa, sb) = (a.snapshot(), both.snapshot());
        assert_eq!(sa.count, sb.count);
        assert_eq!(sa.sum, sb.sum);
        assert_eq!(sa.min, sb.min);
        assert_eq!(sa.max, sb.max);
        assert_eq!(sa.buckets, sb.buckets);
        assert_eq!(sa.p50, sb.p50);
    }

    #[test]
    fn concurrent_recording_counts_exactly() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..25_000u64 {
                    h.record(t * 1000 + i % 997 + 1);
                }
            }));
        }
        for hd in handles {
            hd.join().unwrap();
        }
        assert_eq!(h.count(), 100_000);
    }

    #[test]
    fn absorb_matches_live_merge() {
        let mut rng = DetRng::seed_from_u64(0xAB50);
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for _ in 0..20_000 {
            let v = rng.random_range(1u64..10_000_000);
            if v.is_multiple_of(3) {
                a.record(v)
            } else {
                b.record(v)
            }
            both.record(v);
        }
        let mut sa = a.snapshot();
        sa.absorb(&b.snapshot());
        let sb = both.snapshot();
        assert_eq!(sa, sb);
    }

    #[test]
    fn absorb_into_and_from_empty() {
        let h = Histogram::new();
        for v in [5u64, 50, 500] {
            h.record(v);
        }
        let live = h.snapshot();
        // Empty absorbs full → equals full.
        let mut empty = HistSnapshot::default();
        empty.absorb(&live);
        assert_eq!(empty, live);
        // Full absorbs empty → unchanged.
        let mut full = live.clone();
        full.absorb(&HistSnapshot::default());
        assert_eq!(full, live);
    }

    #[test]
    fn snapshot_quantile_matches_live() {
        let h = Histogram::new();
        for v in 0..10_000u64 {
            h.record(v * 17 + 3);
        }
        let s = h.snapshot();
        for p in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(p), h.quantile(p), "p={p}");
        }
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_buckets_are_sparse_and_ascending() {
        let h = Histogram::new();
        for v in [1u64, 1, 100, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4);
        assert!(s.buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100_000);
    }
}
