//! Per-operation span scopes over the flight recorder.
//!
//! A span attributes wall-clock time inside an operation to a phase:
//! where does an insert spend its nanoseconds — admission control, the
//! tree walk, the pool fast path? Each [`crate::span!`] scope records a
//! [`crate::recorder::EventKind::SpanBegin`]/[`crate::recorder::EventKind::SpanEnd`]
//! pair into the calling thread's flight-recorder ring; [`crate::trace::export_chrome`]
//! pairs them back up into Chrome `trace_event` complete events.
//!
//! Like [`crate::trace_event!`], span call sites compile to **nothing**
//! without the `obs-trace` feature: the guard is a zero-sized type with
//! no `Drop` impl and the phase argument is never evaluated. The
//! `obs_overhead` bench asserts both properties.
//!
//! Spans nest lexically (an `Insert` op span encloses `Admission` and
//! `TreeWalk` phase spans); the exporter maintains a per-thread stack,
//! so begin/end pairs must be properly nested per thread — guaranteed
//! by guard drop order.

#[cfg(feature = "obs-trace")]
use crate::recorder::EventKind;

/// Which phase of an operation a span covers. The `u32` id travels in
/// the event's `a` payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SpanPhase {
    /// A whole `insert` operation (op-level span).
    Insert = 1,
    /// A whole `extract_max` operation (op-level span).
    Extract = 2,
    /// Admission control: capacity check, backpressure wait.
    Admission = 3,
    /// Two-choice shard selection in the sharded queue.
    ShardPick = 4,
    /// Mound tree descent/ascent (insert placement, root extraction).
    TreeWalk = 5,
    /// Claiming an element from the shared extraction pool.
    PoolClaim = 6,
    /// Draining the root set into the pool (`batch` elements).
    PoolRefill = 7,
    /// Restoring the mound invariant after a root extraction.
    SwapDown = 8,
}

impl SpanPhase {
    /// Recover a phase from its event payload id.
    pub fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            1 => Self::Insert,
            2 => Self::Extract,
            3 => Self::Admission,
            4 => Self::ShardPick,
            5 => Self::TreeWalk,
            6 => Self::PoolClaim,
            7 => Self::PoolRefill,
            8 => Self::SwapDown,
            _ => return None,
        })
    }

    /// Stable lowercase name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Insert => "insert",
            Self::Extract => "extract",
            Self::Admission => "admission",
            Self::ShardPick => "shard_pick",
            Self::TreeWalk => "tree_walk",
            Self::PoolClaim => "pool_claim",
            Self::PoolRefill => "pool_refill",
            Self::SwapDown => "swap_down",
        }
    }
}

/// RAII guard recording a span's begin on construction and its end on
/// drop. Created by [`crate::span!`]; with tracing compiled out this is
/// a zero-sized no-op type.
#[cfg(feature = "obs-trace")]
pub struct SpanGuard {
    phase: SpanPhase,
}

#[cfg(feature = "obs-trace")]
impl SpanGuard {
    /// Open a span: records [`EventKind::SpanBegin`] now and
    /// [`EventKind::SpanEnd`] when the guard drops.
    #[inline]
    pub fn enter(phase: SpanPhase) -> Self {
        crate::recorder::record(EventKind::SpanBegin, phase as u32, 0);
        Self { phase }
    }
}

#[cfg(feature = "obs-trace")]
impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        crate::recorder::record(EventKind::SpanEnd, self.phase as u32, 0);
    }
}

/// RAII guard recording a span's begin on construction and its end on
/// drop. Created by [`crate::span!`]; with tracing compiled out this is
/// a zero-sized no-op type.
#[cfg(not(feature = "obs-trace"))]
pub struct SpanGuard;

#[cfg(not(feature = "obs-trace"))]
impl SpanGuard {
    /// No-op guard (tracing compiled out).
    #[inline(always)]
    pub fn noop() -> Self {
        Self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_ids_round_trip() {
        for p in [
            SpanPhase::Insert,
            SpanPhase::Extract,
            SpanPhase::Admission,
            SpanPhase::ShardPick,
            SpanPhase::TreeWalk,
            SpanPhase::PoolClaim,
            SpanPhase::PoolRefill,
            SpanPhase::SwapDown,
        ] {
            assert_eq!(SpanPhase::from_u32(p as u32), Some(p));
            assert!(!p.name().is_empty());
        }
        assert_eq!(SpanPhase::from_u32(0), None);
        assert_eq!(SpanPhase::from_u32(99), None);
    }

    #[cfg(not(feature = "obs-trace"))]
    #[test]
    fn guard_is_zero_sized_when_disabled() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert!(!std::mem::needs_drop::<SpanGuard>());
        let _span = crate::span!(SpanPhase::Insert);
    }

    #[cfg(feature = "obs-trace")]
    #[test]
    fn guard_records_begin_end_pair() {
        // Don't clear the process-global recorder (other tests share it);
        // just count our own kind deltas.
        let before = crate::recorder::recorded_total();
        {
            let _span = crate::span!(SpanPhase::SwapDown);
        }
        assert!(crate::recorder::recorded_total() >= before + 2);
        let evs = crate::recorder::dump();
        let begins = evs
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin && e.a == SpanPhase::SwapDown as u32)
            .count();
        let ends = evs
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd && e.a == SpanPhase::SwapDown as u32)
            .count();
        assert!(begins >= 1 && ends >= 1);
    }
}
