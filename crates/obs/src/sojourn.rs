//! Sampled per-element *sojourn time*: the wall-clock interval between
//! an element's insertion and its extraction — the queueing-delay
//! number scheduling operators reason in.
//!
//! Tracking every element would mean a timestamp in every set/pool
//! slot; instead the tracker mirrors the
//! [`RankEstimator`](crate::RankEstimator)'s shadow-reservoir design: a
//! fixed lock-free table of `(key, stamp)` slots, sampling inserted
//! keys at rate `1/2^shift` with a Fibonacci hash that is a pure
//! function of the key — so the insert and extract sides agree on
//! which keys are sampled without coordination. A sampled insert
//! stamps a slot; the matching extract records `now - stamp` into a
//! log-linear [`Histogram`] and frees the slot.
//!
//! # Sojourn vs. rank
//!
//! `quality.est_rank` measures *how wrong* an extraction is (position
//! error against the shadow population); `queue.sojourn_ns` measures
//! *how long* elements wait. A strict queue under overload has perfect
//! rank and terrible sojourn; a deeply relaxed idle queue the reverse.
//! The estimator's `staleness_ns` is close to sojourn but only covers
//! keys that were still resident in its (evicting) reservoir —
//! the sojourn table never overwrites a live slot, so its histogram is
//! an unbiased sample of matched elements' true waits.
//!
//! Duplicate priorities: keys are priorities, and a sampled key that
//! is inserted twice while the first copy is still queued finds its
//! slot range occupied and lands in a neighbouring slot (bounded
//! probing); the extract side matches *a* copy's stamp, which under
//! FIFO-ish service is an approximation the histogram tolerates.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::Histogram;
use crate::metrics::Counter;
use crate::recorder::now_ns;
use crate::snapshot::Snapshot;

/// Slot stamp marking "a writer is mid-claim"; readers skip it.
const CLAIMING: u64 = u64::MAX;
/// Bounded linear-probe window around a key's home slot.
const PROBE: usize = 8;
/// Default slot count (two `u64` arrays: 16 KiB total).
const DEFAULT_SLOTS: usize = 1024;

#[inline]
fn fib(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Lock-free sampled sojourn-time tracker (see module docs).
pub struct SojournTracker {
    shift: u32,
    mask: usize,
    keys: Box<[AtomicU64]>,
    stamps: Box<[AtomicU64]>,
    hist: Histogram,
    stamped: Counter,
    matched: Counter,
    missed: Counter,
    dropped: Counter,
    removed: Counter,
}

impl SojournTracker {
    /// Sample inserted keys at rate `1/2^shift` (`0` samples every
    /// key — exact but hot; testing only). `shift` is clamped to 32.
    pub fn new(shift: u32) -> Self {
        Self::with_slots(shift, DEFAULT_SLOTS)
    }

    /// As [`new`](Self::new) with an explicit slot count (rounded up
    /// to a power of two, minimum the probe window of 8).
    pub fn with_slots(shift: u32, slots: usize) -> Self {
        let slots = slots.max(PROBE).next_power_of_two();
        let mk = || {
            (0..slots)
                .map(|_| AtomicU64::new(0))
                .collect::<Box<[AtomicU64]>>()
        };
        Self {
            shift: shift.min(32),
            mask: slots - 1,
            keys: mk(),
            stamps: mk(),
            hist: Histogram::new(),
            stamped: Counter::new(),
            matched: Counter::new(),
            missed: Counter::new(),
            dropped: Counter::new(),
            removed: Counter::new(),
        }
    }

    /// Whether `key` is in the sample — a pure function of the key, so
    /// both sides of the queue agree without coordination.
    #[inline]
    pub fn sampled(&self, key: u64) -> bool {
        self.shift == 0 || fib(key) >> (64 - self.shift) == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // Use a different bit range than the sampling decision so the
        // surviving keys (top bits zero) still spread over the table.
        (fib(key) >> 16) as usize & self.mask
    }

    /// Note an admitted insertion. Cost for unsampled keys: one
    /// multiply and shift.
    #[inline]
    pub fn note_insert(&self, key: u64) {
        if !self.sampled(key) {
            return;
        }
        self.stamp(key);
    }

    #[cold]
    fn stamp(&self, key: u64) {
        let home = self.home(key);
        for i in 0..PROBE {
            let slot = (home + i) & self.mask;
            if self.stamps[slot]
                .compare_exchange(0, CLAIMING, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.keys[slot].store(key, Ordering::Relaxed);
                // `| 1` keeps a stamp taken at t=0 distinguishable from
                // the empty marker; the ≤1ns skew is below bucket width.
                self.stamps[slot].store(now_ns() | 1, Ordering::Release);
                self.stamped.incr();
                return;
            }
        }
        self.dropped.incr();
    }

    /// Note an extraction: on a match records the element's sojourn
    /// and frees the slot.
    #[inline]
    pub fn note_extract(&self, key: u64) {
        if !self.sampled(key) {
            return;
        }
        match self.take(key) {
            Some(stamp) => {
                self.hist.record(now_ns().saturating_sub(stamp));
                self.matched.incr();
            }
            None => self.missed.incr(),
        }
    }

    /// Note a removal that is *not* a service completion (eviction
    /// shedding, give-back rollback): frees the slot without recording
    /// a sojourn.
    #[inline]
    pub fn note_remove(&self, key: u64) {
        if !self.sampled(key) {
            return;
        }
        if self.take(key).is_some() {
            self.removed.incr();
        }
    }

    #[cold]
    fn take(&self, key: u64) -> Option<u64> {
        let home = self.home(key);
        for i in 0..PROBE {
            let slot = (home + i) & self.mask;
            let stamp = self.stamps[slot].load(Ordering::Acquire);
            if stamp == 0 || stamp == CLAIMING {
                continue;
            }
            if self.keys[slot].load(Ordering::Relaxed) != key {
                continue;
            }
            if self.stamps[slot]
                .compare_exchange(stamp, CLAIMING, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.stamps[slot].store(0, Ordering::Release);
                return Some(stamp);
            }
        }
        None
    }

    /// The sampling shift.
    pub fn sample_shift(&self) -> u32 {
        self.shift
    }

    /// Table slot count.
    pub fn slots(&self) -> usize {
        self.mask + 1
    }

    /// Slots currently holding a live stamp.
    pub fn live(&self) -> usize {
        self.stamps
            .iter()
            .filter(|s| {
                let v = s.load(Ordering::Relaxed);
                v != 0 && v != CLAIMING
            })
            .count()
    }

    /// The sojourn histogram (ns).
    pub fn hist(&self) -> &Histogram {
        &self.hist
    }

    /// `(stamped, matched, missed, dropped, removed)` counter values.
    pub fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.stamped.get(),
            self.matched.get(),
            self.missed.get(),
            self.dropped.get(),
            self.removed.get(),
        )
    }

    /// Export `queue.sojourn_ns` plus the `sojourn.*` accounting into a
    /// snapshot.
    pub fn snapshot_into(&self, s: &mut Snapshot) {
        let (stamped, matched, missed, dropped, removed) = self.counters();
        s.push_hist("queue.sojourn_ns", &self.hist);
        s.push_counter("sojourn.stamped", stamped);
        s.push_counter("sojourn.matched", matched);
        s.push_counter("sojourn.missed", missed);
        s.push_counter("sojourn.dropped", dropped);
        s.push_counter("sojourn.removed", removed);
        s.push_gauge("sojourn.sample_shift", i64::from(self.shift));
        s.push_gauge("sojourn.table.live", self.live() as i64);
        s.push_gauge("sojourn.table.slots", self.slots() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_zero_samples_everything() {
        let t = SojournTracker::with_slots(0, 64);
        for k in 0..50u64 {
            assert!(t.sampled(k));
        }
    }

    #[test]
    fn sampling_rate_tracks_shift() {
        let t = SojournTracker::new(3); // 1/8
        let hits = (0..80_000u64).filter(|&k| t.sampled(k)).count();
        let expect = 80_000 / 8;
        assert!(
            (hits as i64 - expect as i64).unsigned_abs() < expect as u64 / 2,
            "{hits} sampled, expected ≈{expect}"
        );
    }

    #[test]
    fn insert_extract_records_sojourn() {
        let t = SojournTracker::with_slots(0, 64);
        t.note_insert(42);
        assert_eq!(t.live(), 1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.note_extract(42);
        assert_eq!(t.live(), 0);
        let (stamped, matched, missed, dropped, _) = t.counters();
        assert_eq!((stamped, matched, missed, dropped), (1, 1, 0, 0));
        assert_eq!(t.hist().count(), 1);
        assert!(
            t.hist().quantile(0.5) >= 1_000_000,
            "slept 2ms, sojourn must be ≥1ms, got {}ns",
            t.hist().quantile(0.5)
        );
    }

    #[test]
    fn extract_without_insert_misses() {
        let t = SojournTracker::with_slots(0, 64);
        t.note_extract(7);
        assert_eq!(t.counters().2, 1, "missed");
        assert_eq!(t.hist().count(), 0);
    }

    #[test]
    fn remove_frees_without_recording() {
        let t = SojournTracker::with_slots(0, 64);
        t.note_insert(5);
        t.note_remove(5);
        assert_eq!(t.live(), 0);
        assert_eq!(t.hist().count(), 0);
        assert_eq!(t.counters().4, 1, "removed");
        // The freed slot is reusable.
        t.note_insert(5);
        assert_eq!(t.live(), 1);
    }

    #[test]
    fn probe_window_overflow_drops() {
        let t = SojournTracker::with_slots(0, 8); // mask covers one probe window
        for k in 0..20u64 {
            t.note_insert(k);
        }
        let (stamped, _, _, dropped, _) = t.counters();
        assert_eq!(stamped, 8, "table full at slot count");
        assert_eq!(dropped, 12);
    }

    #[test]
    fn duplicate_keys_occupy_distinct_slots() {
        let t = SojournTracker::with_slots(0, 64);
        t.note_insert(9);
        t.note_insert(9);
        assert_eq!(t.live(), 2);
        t.note_extract(9);
        t.note_extract(9);
        assert_eq!(t.live(), 0);
        assert_eq!(t.counters().1, 2, "both copies matched");
    }

    #[test]
    fn concurrent_insert_extract_conserves_slots() {
        use std::sync::Arc;
        let t = Arc::new(SojournTracker::with_slots(0, 256));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        let k = tid * 5_000 + i;
                        t.note_insert(k);
                        t.note_extract(k);
                    }
                });
            }
        });
        let (stamped, matched, missed, dropped, removed) = t.counters();
        // Every stamp is consumed by exactly one match (keys are
        // disjoint per thread and extracted by the stamping thread).
        assert_eq!(stamped, matched);
        assert_eq!(removed, 0);
        assert_eq!(stamped + dropped, 20_000);
        assert_eq!(matched + missed, 20_000);
        assert_eq!(t.live(), 0, "no leaked slots");
    }

    #[test]
    fn snapshot_exports_expected_names() {
        let t = SojournTracker::with_slots(0, 64);
        t.note_insert(1);
        t.note_extract(1);
        let mut s = Snapshot::new();
        t.snapshot_into(&mut s);
        assert!(s.hist("queue.sojourn_ns").is_some());
        assert_eq!(s.counter("sojourn.stamped"), Some(1));
        assert_eq!(s.counter("sojourn.matched"), Some(1));
        assert_eq!(s.gauge("sojourn.table.slots"), Some(64));
    }
}
