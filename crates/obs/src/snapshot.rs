//! Point-in-time metric snapshots with JSON / pretty-text rendering.

use std::fmt::Write as _;

use crate::hist::{HistSnapshot, Histogram};
use crate::json::{write_escaped, write_f64};
use crate::sampler::Series;

/// A point-in-time copy of a set of metrics: counters, gauges, derived
/// ratios, histograms, time series and free-form metadata.
///
/// This is the interchange type of the observability layer: queues
/// return one from `ConcurrentPriorityQueue::metrics`, instrumented
/// crates export one for their internal counters, and the bench
/// harness merges them all into a `results/*.metrics.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` monotone counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` instantaneous gauges.
    pub gauges: Vec<(String, i64)>,
    /// `(name, value)` derived ratios (e.g. `zmsq.root_access_ratio`).
    pub ratios: Vec<(String, f64)>,
    /// `(name, snapshot)` histograms.
    pub hists: Vec<(String, HistSnapshot)>,
    /// `(name, value)` headline result figures (throughput, p99 latency,
    /// estimated rank p99) — the stable block `scripts/compare_bench.py`
    /// gates perf trajectories on.
    pub summary: Vec<(String, f64)>,
    /// Sampler time series.
    pub series: Vec<Series>,
    /// `(key, value)` free-form metadata (bin name, arguments, …).
    pub meta: Vec<(String, String)>,
}

impl Snapshot {
    /// New empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a counter value.
    pub fn push_counter(&mut self, name: &str, v: u64) {
        self.counters.push((name.to_string(), v));
    }

    /// Append a gauge value.
    pub fn push_gauge(&mut self, name: &str, v: i64) {
        self.gauges.push((name.to_string(), v));
    }

    /// Append a derived ratio.
    pub fn push_ratio(&mut self, name: &str, v: f64) {
        self.ratios.push((name.to_string(), v));
    }

    /// Append a live histogram (snapshotted now).
    pub fn push_hist(&mut self, name: &str, h: &Histogram) {
        self.hists.push((name.to_string(), h.snapshot()));
    }

    /// Append an already-snapshotted histogram.
    pub fn push_hist_snapshot(&mut self, name: &str, h: HistSnapshot) {
        self.hists.push((name.to_string(), h));
    }

    /// Append a headline summary figure (see [`Snapshot::summary`]).
    pub fn push_summary(&mut self, name: &str, v: f64) {
        self.summary.push((name.to_string(), v));
    }

    /// Append a sampler series.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Append a metadata entry.
    pub fn push_meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Absorb `other`, prefixing every metric name with `prefix`
    /// (pass `""` for a plain merge). Metadata keys are prefixed too.
    pub fn merge_prefixed(&mut self, prefix: &str, other: Snapshot) {
        let pre = |n: &str| {
            if prefix.is_empty() {
                n.to_string()
            } else {
                format!("{prefix}{n}")
            }
        };
        for (n, v) in other.counters {
            self.counters.push((pre(&n), v));
        }
        for (n, v) in other.gauges {
            self.gauges.push((pre(&n), v));
        }
        for (n, v) in other.ratios {
            self.ratios.push((pre(&n), v));
        }
        for (n, v) in other.hists {
            self.hists.push((pre(&n), v));
        }
        for (n, v) in other.summary {
            self.summary.push((pre(&n), v));
        }
        for mut s in other.series {
            s.name = pre(&s.name);
            self.series.push(s);
        }
        for (k, v) in other.meta {
            self.meta.push((pre(&k), v));
        }
    }

    /// Absorb `other` unchanged.
    pub fn merge(&mut self, other: Snapshot) {
        self.merge_prefixed("", other);
    }

    /// Look up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a ratio by exact name.
    pub fn ratio(&self, name: &str) -> Option<f64> {
        self.ratios.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by exact name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Look up a summary figure by exact name.
    pub fn summary(&self, name: &str) -> Option<f64> {
        self.summary
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Serialize to a JSON document with the stable top-level keys
    /// `meta`, `counters`, `gauges`, `ratios`, `histograms`, `summary`,
    /// `series`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            write_escaped(&mut out, k);
            out.push_str(": ");
            write_escaped(&mut out, v);
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            write_escaped(&mut out, n);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            write_escaped(&mut out, n);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"ratios\": {");
        for (i, (n, v)) in self.ratios.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            write_escaped(&mut out, n);
            out.push_str(": ");
            write_f64(&mut out, *v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (n, h)) in self.hists.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            write_escaped(&mut out, n);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": ",
                h.count, h.sum, h.min, h.max
            );
            write_f64(&mut out, h.mean());
            let _ = write!(
                out,
                ", \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \
                 \"buckets\": [",
                h.p50, h.p90, h.p99, h.p999
            );
            for (j, (floor, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{floor}, {c}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  },\n  \"summary\": {");
        for (i, (n, v)) in self.summary.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            write_escaped(&mut out, n);
            out.push_str(": ");
            write_f64(&mut out, *v);
        }
        out.push_str("\n  },\n  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            out.push_str("{\"name\": ");
            write_escaped(&mut out, &s.name);
            out.push_str(", \"columns\": [");
            for (j, c) in s.columns.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_escaped(&mut out, c);
            }
            out.push_str("], \"rows\": [");
            for (j, row) in s.rows.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                for (k, v) in row.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    write_f64(&mut out, *v);
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a document produced by [`Snapshot::to_json`] back into a
    /// `Snapshot`.
    ///
    /// Inverse of the writer up to ordering: JSON objects carry no
    /// order, so every named collection comes back **sorted by name**
    /// (series, a JSON array, keep their order). Documents written
    /// before the `summary` block existed parse with an empty summary.
    /// Non-finite ratios/summaries are serialized as `null` and come
    /// back as NaN.
    pub fn from_json(src: &str) -> Result<Self, String> {
        use crate::json::{parse, Value};

        fn f64_of(v: &Value) -> Result<f64, String> {
            match v {
                Value::Num(n) => Ok(*n),
                Value::Null => Ok(f64::NAN),
                other => Err(format!("expected number, got {other:?}")),
            }
        }
        fn u64_of(v: &Value) -> Result<u64, String> {
            let n = f64_of(v)?;
            if n < 0.0 || !n.is_finite() {
                return Err(format!("expected unsigned integer, got {n}"));
            }
            Ok(n as u64)
        }
        fn obj<'v>(
            v: &'v Value,
            key: &str,
        ) -> Result<&'v std::collections::BTreeMap<String, Value>, String> {
            v.get(key)
                .ok_or_else(|| format!("missing top-level key {key:?}"))?
                .as_obj()
                .ok_or_else(|| format!("top-level {key:?} is not an object"))
        }

        let v = parse(src)?;
        let mut snap = Snapshot::new();
        for (k, val) in obj(&v, "meta")? {
            let s = val
                .as_str()
                .ok_or_else(|| format!("meta {k:?} is not a string"))?;
            snap.meta.push((k.clone(), s.to_string()));
        }
        for (k, val) in obj(&v, "counters")? {
            snap.counters.push((k.clone(), u64_of(val)?));
        }
        for (k, val) in obj(&v, "gauges")? {
            snap.gauges.push((k.clone(), f64_of(val)? as i64));
        }
        for (k, val) in obj(&v, "ratios")? {
            snap.ratios.push((k.clone(), f64_of(val)?));
        }
        for (k, val) in obj(&v, "histograms")? {
            let field = |name: &str| {
                val.get(name)
                    .ok_or_else(|| format!("histogram {k:?} missing {name:?}"))
            };
            let mut buckets = Vec::new();
            for pair in field("buckets")?
                .as_arr()
                .ok_or_else(|| format!("histogram {k:?} buckets not an array"))?
            {
                let pair = pair
                    .as_arr()
                    .ok_or_else(|| format!("histogram {k:?} bucket not a pair"))?;
                if pair.len() != 2 {
                    return Err(format!("histogram {k:?} bucket arity {}", pair.len()));
                }
                buckets.push((u64_of(&pair[0])?, u64_of(&pair[1])?));
            }
            snap.hists.push((
                k.clone(),
                HistSnapshot {
                    count: u64_of(field("count")?)?,
                    sum: u64_of(field("sum")?)?,
                    min: u64_of(field("min")?)?,
                    max: u64_of(field("max")?)?,
                    p50: u64_of(field("p50")?)?,
                    p90: u64_of(field("p90")?)?,
                    p99: u64_of(field("p99")?)?,
                    p999: u64_of(field("p999")?)?,
                    buckets,
                },
            ));
        }
        // Absent in documents written before this block existed.
        if let Some(summary) = v.get("summary") {
            let summary = summary
                .as_obj()
                .ok_or("top-level \"summary\" is not an object")?;
            for (k, val) in summary {
                snap.summary.push((k.clone(), f64_of(val)?));
            }
        }
        for s in v
            .get("series")
            .ok_or("missing top-level key \"series\"")?
            .as_arr()
            .ok_or("top-level \"series\" is not an array")?
        {
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .ok_or("series missing name")?
                .to_string();
            let mut columns = Vec::new();
            for c in s
                .get("columns")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("series {name:?} missing columns"))?
            {
                columns.push(
                    c.as_str()
                        .ok_or_else(|| format!("series {name:?} column not a string"))?
                        .to_string(),
                );
            }
            let mut rows = Vec::new();
            for row in s
                .get("rows")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("series {name:?} missing rows"))?
            {
                let row = row
                    .as_arr()
                    .ok_or_else(|| format!("series {name:?} row not an array"))?;
                rows.push(row.iter().map(f64_of).collect::<Result<Vec<_>, _>>()?);
            }
            snap.series.push(Series {
                name,
                columns,
                rows,
            });
        }
        Ok(snap)
    }

    /// Human-readable multi-line rendering (aligned `name value` rows,
    /// histogram one-liners).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.ratios.iter().map(|(n, _)| n.len()))
            .chain(self.summary.iter().map(|(n, _)| n.len()))
            .chain(self.hists.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for (k, v) in &self.meta {
            let _ = writeln!(out, "# {k}: {v}");
        }
        for (n, v) in &self.counters {
            let _ = writeln!(out, "{n:<width$}  {v}");
        }
        for (n, v) in &self.gauges {
            let _ = writeln!(out, "{n:<width$}  {v}");
        }
        for (n, v) in &self.ratios {
            let _ = writeln!(out, "{n:<width$}  {v:.4}");
        }
        for (n, v) in &self.summary {
            let _ = writeln!(out, "{n:<width$}  {v}");
        }
        for (n, h) in &self.hists {
            let _ = writeln!(
                out,
                "{n:<width$}  n={} mean={:.0} p50={} p99={} p99.9={} max={}",
                h.count,
                h.mean(),
                h.p50,
                h.p99,
                h.p999,
                h.max
            );
        }
        for s in &self.series {
            let _ = writeln!(
                out,
                "series {} [{}] {} rows",
                s.name,
                s.columns.join(","),
                s.rows.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.push_meta("bin", "test \"quoted\"");
        s.push_counter("futex.waits", 42);
        s.push_gauge("depth", -3);
        s.push_ratio("zmsq.root_access_ratio", 0.03);
        let h = Histogram::new();
        h.record(100);
        h.record(2000);
        s.push_hist("insert_ns", &h);
        s.push_summary("zmsq.throughput_ops_per_s", 1.25e6);
        s.push_series(Series {
            name: "depth".into(),
            columns: vec!["t_ms".into(), "len".into()],
            rows: vec![vec![0.0, 1.0], vec![10.0, 2.0]],
        });
        s
    }

    #[test]
    fn json_parses_and_has_stable_top_level_keys() {
        let s = sample();
        let v = json::parse(&s.to_json()).expect("snapshot JSON must parse");
        for key in [
            "meta",
            "counters",
            "gauges",
            "ratios",
            "histograms",
            "summary",
            "series",
        ] {
            assert!(v.get(key).is_some(), "missing top-level key {key}");
        }
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("futex.waits")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );
        assert_eq!(
            v.get("ratios")
                .unwrap()
                .get("zmsq.root_access_ratio")
                .unwrap()
                .as_f64(),
            Some(0.03)
        );
        let h = v.get("histograms").unwrap().get("insert_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(h.get("buckets").unwrap().as_arr().unwrap().len(), 2);
        let series = v.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].get("rows").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let v = json::parse(&Snapshot::new().to_json()).unwrap();
        assert!(v.get("counters").is_some());
    }

    #[test]
    fn merge_prefixed_renames_everything() {
        let mut root = Snapshot::new();
        root.merge_prefixed("sync.", sample());
        assert_eq!(root.counter("sync.futex.waits"), Some(42));
        assert_eq!(root.gauge("sync.depth"), Some(-3));
        assert!(root.ratio("sync.zmsq.root_access_ratio").is_some());
        assert!(root.hist("sync.insert_ns").is_some());
        assert_eq!(root.series[0].name, "sync.depth");
    }

    #[test]
    fn summary_serializes_and_looks_up() {
        let s = sample();
        assert_eq!(s.summary("zmsq.throughput_ops_per_s"), Some(1.25e6));
        assert_eq!(s.summary("missing"), None);
        let v = json::parse(&s.to_json()).unwrap();
        assert_eq!(
            v.get("summary")
                .unwrap()
                .get("zmsq.throughput_ops_per_s")
                .unwrap()
                .as_f64(),
            Some(1.25e6)
        );
    }

    #[test]
    fn from_json_round_trips_sample() {
        let s = sample();
        let back = Snapshot::from_json(&s.to_json()).expect("parse back");
        // sample() pushes names already unique; JSON objects sort them,
        // so compare against a name-sorted copy.
        let mut want = s.clone();
        want.counters.sort();
        want.gauges.sort();
        want.ratios.sort_by(|a, b| a.0.cmp(&b.0));
        want.hists.sort_by(|a, b| a.0.cmp(&b.0));
        want.summary.sort_by(|a, b| a.0.cmp(&b.0));
        want.meta.sort();
        assert_eq!(back, want);
    }

    #[test]
    fn from_json_accepts_pre_summary_documents() {
        let body = r#"{"meta": {}, "counters": {"c": 1}, "gauges": {},
                       "ratios": {}, "histograms": {}, "series": []}"#;
        let s = Snapshot::from_json(body).unwrap();
        assert_eq!(s.counter("c"), Some(1));
        assert!(s.summary.is_empty());
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("not json").is_err());
        let bad = r#"{"meta": {}, "counters": {"c": -1}, "gauges": {},
                      "ratios": {}, "histograms": {}, "series": []}"#;
        assert!(Snapshot::from_json(bad).is_err(), "negative counter");
    }

    #[test]
    fn lookups_and_pretty() {
        let s = sample();
        assert_eq!(s.counter("futex.waits"), Some(42));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("depth"), Some(-3));
        let p = s.pretty();
        assert!(p.contains("futex.waits"), "{p}");
        assert!(p.contains("series depth"), "{p}");
    }
}
