//! Low-overhead observability substrate for the ZMSQ reproduction.
//!
//! The paper's key claims are quantitative internals — "only 3% of
//! extractMax() calls access the root", the dynamic-set full-ratio
//! profiling of §4.2 — and tuning relaxation parameters requires
//! measuring quality and throughput *together, over time*. This crate
//! is the shared measurement layer, with zero external dependencies so
//! every other crate in the workspace can depend on it:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — always-on metrics with
//!   `Relaxed` hot-path recording. Counters are striped across cache
//!   lines (a global round-robin stripe is assigned per thread on first
//!   use); histograms are log-linear (HDR-style) with constant memory.
//! * [`Registry`] — named dynamic metrics for harnesses, plus a
//!   process-global instance ([`global`]).
//! * [`Snapshot`] — a point-in-time copy of any set of metrics that
//!   serializes to JSON ([`Snapshot::to_json`]) and pretty text
//!   ([`Snapshot::pretty`]); this is what benches write to
//!   `results/*.metrics.json` and what
//!   `ConcurrentPriorityQueue::metrics` returns.
//! * [`recorder`] — the flight recorder: per-thread lock-free ring
//!   buffers of fixed-size trace events, merged time-ordered by
//!   [`recorder::dump`]. Call sites use [`trace_event!`], which expands
//!   to **nothing** unless the `obs-trace` feature is enabled
//!   (mirroring `fault::fail_point!`); counters stay always-on.
//! * [`sampler`] — a background thread that periodically probes
//!   caller-supplied gauges (queue depth, pool fill, rank error) into a
//!   time [`Series`].
//! * [`watchdog`] — a background thread that watches progress counters
//!   paired with busy predicates, flags subsystems that stop moving
//!   while claiming to be busy (stalled shard, wedged producer, stuck
//!   reclamation), and dumps the flight recorder on a sustained stall.
//! * [`export`] — live introspection: a Prometheus text renderer for
//!   [`Snapshot`] and a tiny zero-dependency HTTP/1.0 endpoint
//!   ([`serve`]) exposing `/metrics`, `/snapshot.json` and `/healthz`
//!   while a process is running.
//! * [`retain`] — fixed-memory multi-tier time-series retention rings
//!   (2s/1m/1h by default) fed by [`Sampler::start_retained`], so a
//!   scrape sees downsampled history rather than a single point.
//! * [`sojourn`] — sampled per-element enqueue→extract sojourn-time
//!   histograms ([`SojournTracker`]), the queueing-delay complement to
//!   [`RankEstimator`]'s rank error.
//!
//! Overhead budget: with default features a counter increment is one
//! relaxed `fetch_add` on a thread-private cache line and a histogram
//! record is two; trace call sites compile out entirely. See the
//! `obs_overhead` bench binary for the measured numbers.

#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod quality;
pub mod recorder;
pub mod retain;
pub mod sampler;
pub mod snapshot;
pub mod sojourn;
pub mod span;
pub mod trace;
pub mod watchdog;

pub use export::{render_prometheus, serve, MetricsServer};
pub use hist::{HistSnapshot, Histogram};
pub use metrics::{global, Counter, Gauge, Registry, STRIPES};
pub use quality::RankEstimator;
pub use recorder::EventKind;
pub use retain::Retention;
pub use sampler::{Sampler, Series};
pub use snapshot::Snapshot;
pub use sojourn::SojournTracker;
pub use span::{SpanGuard, SpanPhase};
pub use watchdog::{Watchdog, WatchdogBuilder};

/// Whether flight-recorder call sites are compiled in.
///
/// Lets integration points guard non-macro work (e.g. dumping the
/// recorder from a panic-recovery path) with a const the optimizer
/// folds away:
///
/// ```
/// if obs::TRACE_ENABLED {
///     let _ = obs::recorder::dump();
/// }
/// ```
#[cfg(feature = "obs-trace")]
pub const TRACE_ENABLED: bool = true;
/// Whether flight-recorder call sites are compiled in.
#[cfg(not(feature = "obs-trace"))]
pub const TRACE_ENABLED: bool = false;

/// Record a flight-recorder event. Compiles to nothing (arguments
/// unevaluated) without the `obs-trace` feature.
///
/// Forms: `trace_event!(kind)`, `trace_event!(kind, a)`,
/// `trace_event!(kind, a, b)` where `a: u32` carries a small payload
/// (node level, woken count, …) and `b: u64` a large one (priority,
/// scanned hazards, …).
#[cfg(feature = "obs-trace")]
#[macro_export]
macro_rules! trace_event {
    ($kind:expr) => {
        $crate::recorder::record($kind, 0, 0)
    };
    ($kind:expr, $a:expr) => {
        $crate::recorder::record($kind, $a, 0)
    };
    ($kind:expr, $a:expr, $b:expr) => {
        $crate::recorder::record($kind, $a, $b)
    };
}

/// Record a flight-recorder event. Compiles to nothing (arguments
/// unevaluated) without the `obs-trace` feature.
#[cfg(not(feature = "obs-trace"))]
#[macro_export]
macro_rules! trace_event {
    ($kind:expr) => {};
    ($kind:expr, $a:expr) => {};
    ($kind:expr, $a:expr, $b:expr) => {};
}

/// Open a phase span scope: evaluates to a [`span::SpanGuard`] that
/// records a begin event now and an end event when dropped. Bind it to
/// a named local (`let _span = obs::span!(...)`) so it lives to the end
/// of the scope — a bare `_` drops immediately.
///
/// Without the `obs-trace` feature this evaluates to a zero-sized
/// no-op guard and the phase argument is never evaluated.
#[cfg(feature = "obs-trace")]
#[macro_export]
macro_rules! span {
    ($phase:expr) => {
        $crate::span::SpanGuard::enter($phase)
    };
}

/// Open a phase span scope (compiled out: zero-sized no-op guard, phase
/// argument unevaluated).
#[cfg(not(feature = "obs-trace"))]
#[macro_export]
macro_rules! span {
    ($phase:expr) => {
        $crate::span::SpanGuard::noop()
    };
}
