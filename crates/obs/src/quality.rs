//! Online rank-error estimation: a lock-free sampled shadow reservoir.
//!
//! The exact rank-error oracle (`workloads::oracle::RankOracle`) keeps a
//! mutex-guarded shadow multiset of every live key — O(n) memory, a
//! global lock on every operation. Fine for tests, unusable as live
//! telemetry. [`RankEstimator`] answers the same question — *when an
//! element is handed out, how many strictly greater elements were still
//! queued?* — from a fixed-size reservoir of **sampled** keys:
//!
//! * The sampling decision is a pure function of the key (a Fibonacci
//!   hash, top `shift` bits all zero → sampled at rate `1/2^shift`), so
//!   the insert and extract sides agree on which keys are tracked
//!   without any shared coin flip.
//! * A sampled insert claims one reservoir slot (key + insert
//!   timestamp); a sampled extract scans the reservoir, counts live
//!   entries with a strictly greater key, and reports
//!   `count × 2^shift` as the rank estimate (the sampled sub-multiset
//!   is a uniform subsample of the live multiset, so the scaled count
//!   is an unbiased estimate up to hash uniformity — see DESIGN.md for
//!   the bias analysis). The matching slot is then released, and its
//!   age is reported as the element's *staleness*.
//! * Everything is `Relaxed`/CAS atomics on fixed storage: no locks, no
//!   allocation after construction. Per-op cost is one multiply + one
//!   branch for unsampled keys (the common case: 63/64 of ops at the
//!   default rate) and one reservoir scan for sampled ones.
//!
//! Conservation identities (exact, asserted by the chaos suite):
//! `sampled_inserts == stored + dropped`,
//! `sampled_extracts == matched + missed`,
//! `sampled_removes == removed_matched + removed_missed`, and
//! `live() == stored − matched − removed_matched`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::hist::Histogram;
use crate::recorder::now_ns;
use crate::snapshot::Snapshot;

/// Slot stamp value marking a slot mid-claim (key not yet published).
const CLAIMING: u64 = u64::MAX;

/// Default reservoir capacity (slots).
pub const DEFAULT_SLOTS: usize = 512;

/// Default sampling shift: rate `1/2^6 = 1/64`.
pub const DEFAULT_SHIFT: u32 = 6;

/// Lock-free sampled shadow reservoir estimating per-extraction rank
/// error, staleness age and wasted-work ratio (see module docs).
///
/// ```
/// use obs::quality::RankEstimator;
/// // shift 0 samples every key: the estimate is the exact rank among
/// // live keys (reservoir permitting).
/// let est = RankEstimator::with_slots(0, 64);
/// est.note_insert(10);
/// est.note_insert(30);
/// est.note_insert(20);
/// // Extracting 10 with {20, 30} still live: rank 2.
/// assert_eq!(est.note_extract(10), Some(2));
/// assert_eq!(est.note_extract(30), Some(0));
/// assert_eq!(est.live(), 1);
/// ```
pub struct RankEstimator {
    shift: u32,
    keys: Box<[AtomicU64]>,
    /// `0` = empty, [`CLAIMING`] = being filled, else the insert
    /// timestamp in ns (forced odd so it is never 0 or `CLAIMING`).
    stamps: Box<[AtomicU64]>,
    /// Round-robin placement hint for inserts.
    cursor: AtomicUsize,

    sampled_inserts: AtomicU64,
    stored: AtomicU64,
    dropped: AtomicU64,
    sampled_extracts: AtomicU64,
    matched: AtomicU64,
    missed: AtomicU64,
    sampled_removes: AtomicU64,
    removed_matched: AtomicU64,
    removed_missed: AtomicU64,
    wasted: AtomicU64,

    est_rank: Histogram,
    staleness_ns: Histogram,
}

impl RankEstimator {
    /// Estimator sampling keys at rate `1/2^shift` with the default
    /// reservoir capacity ([`DEFAULT_SLOTS`]).
    pub fn new(shift: u32) -> Self {
        Self::with_slots(shift, DEFAULT_SLOTS)
    }

    /// Estimator with an explicit reservoir capacity. Size the reservoir
    /// at roughly `expected live elements / 2^shift` plus headroom;
    /// overflow is counted (`dropped`), never silently evicted.
    pub fn with_slots(shift: u32, slots: usize) -> Self {
        let slots = slots.max(1);
        let mk = || (0..slots).map(|_| AtomicU64::new(0)).collect::<Box<[_]>>();
        Self {
            shift: shift.min(32),
            keys: mk(),
            stamps: mk(),
            cursor: AtomicUsize::new(0),
            sampled_inserts: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            sampled_extracts: AtomicU64::new(0),
            matched: AtomicU64::new(0),
            missed: AtomicU64::new(0),
            sampled_removes: AtomicU64::new(0),
            removed_matched: AtomicU64::new(0),
            removed_missed: AtomicU64::new(0),
            wasted: AtomicU64::new(0),
            est_rank: Histogram::new(),
            staleness_ns: Histogram::new(),
        }
    }

    /// The sampling shift (rate is `1/2^shift`).
    pub fn sample_shift(&self) -> u32 {
        self.shift
    }

    /// Reservoir capacity in slots.
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Whether `key` is tracked. Pure function of the key, identical on
    /// the insert and extract sides; equal keys always agree.
    #[inline]
    pub fn sampled(&self, key: u64) -> bool {
        // Fibonacci hash; the top `shift` bits gate at rate 1/2^shift.
        self.shift == 0 || key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.shift) == 0
    }

    /// Record an insertion. The unsampled path is one multiply + branch.
    #[inline]
    pub fn note_insert(&self, key: u64) {
        if self.sampled(key) {
            self.insert_sampled(key);
        }
    }

    #[cold]
    fn insert_sampled(&self, key: u64) {
        self.sampled_inserts.fetch_add(1, Ordering::Relaxed);
        let n = self.keys.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for off in 0..n {
            let i = (start + off) % n;
            if self.stamps[i]
                .compare_exchange(0, CLAIMING, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.keys[i].store(key, Ordering::Relaxed);
                // Odd, nonzero, never CLAIMING: a valid live stamp.
                self.stamps[i].store(now_ns() | 1, Ordering::Release);
                self.stored.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // Reservoir full: counted, not evicted — eviction would bias the
        // estimate toward recently inserted keys.
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an extraction. Returns `Some(estimated rank)` when the key
    /// was sampled (the estimate is also recorded into the `est_rank`
    /// histogram), `None` otherwise.
    #[inline]
    pub fn note_extract(&self, key: u64) -> Option<u64> {
        if self.sampled(key) {
            Some(self.extract_sampled(key))
        } else {
            None
        }
    }

    #[cold]
    fn extract_sampled(&self, key: u64) -> u64 {
        self.sampled_extracts.fetch_add(1, Ordering::Relaxed);
        let (greater, slot) = self.scan(key);
        let est = greater << self.shift;
        self.est_rank.record(est);
        if est > 0 {
            self.wasted.fetch_add(1, Ordering::Relaxed);
        }
        if let Some((i, stamp)) = slot {
            // Release the slot only if it still holds the stamp we saw;
            // a concurrent extract of an equal key may have beaten us to
            // it (then rescanning is not worth the noise — count a miss).
            if self.stamps[i]
                .compare_exchange(stamp, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.matched.fetch_add(1, Ordering::Relaxed);
                self.staleness_ns.record(now_ns().saturating_sub(stamp));
                return est;
            }
        }
        self.missed.fetch_add(1, Ordering::Relaxed);
        est
    }

    /// Record a removal that is *not* a hand-out (eviction under
    /// `ShedPolicy::ShedLowest`, an element returned to the queue by a
    /// conditional extract's give-back path): releases the key's slot
    /// without recording a rank sample.
    #[inline]
    pub fn note_remove(&self, key: u64) {
        if self.sampled(key) {
            self.remove_sampled(key);
        }
    }

    #[cold]
    fn remove_sampled(&self, key: u64) {
        self.sampled_removes.fetch_add(1, Ordering::Relaxed);
        if let (_, Some((i, stamp))) = self.scan(key) {
            if self.stamps[i]
                .compare_exchange(stamp, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.removed_matched.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.removed_missed.fetch_add(1, Ordering::Relaxed);
    }

    /// One pass over the reservoir: count live entries with a strictly
    /// greater key and find a slot holding `key` (lowest-index match).
    fn scan(&self, key: u64) -> (u64, Option<(usize, u64)>) {
        let mut greater = 0u64;
        let mut slot = None;
        for i in 0..self.keys.len() {
            let stamp = self.stamps[i].load(Ordering::Acquire);
            if stamp == 0 || stamp == CLAIMING {
                continue;
            }
            let k = self.keys[i].load(Ordering::Relaxed);
            if k > key {
                greater += 1;
            } else if k == key && slot.is_none() {
                slot = Some((i, stamp));
            }
        }
        (greater, slot)
    }

    /// Live (occupied) reservoir slots — the sampled view of the queue's
    /// current population.
    pub fn live(&self) -> usize {
        self.stamps
            .iter()
            .filter(|s| !matches!(s.load(Ordering::Acquire), 0 | CLAIMING))
            .count()
    }

    /// Raw conservation counters, in declaration order:
    /// `(sampled_inserts, stored, dropped, sampled_extracts, matched,
    /// missed, sampled_removes, removed_matched, removed_missed)`.
    #[allow(clippy::type_complexity)]
    pub fn counters(&self) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64) {
        (
            self.sampled_inserts.load(Ordering::Relaxed),
            self.stored.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
            self.sampled_extracts.load(Ordering::Relaxed),
            self.matched.load(Ordering::Relaxed),
            self.missed.load(Ordering::Relaxed),
            self.sampled_removes.load(Ordering::Relaxed),
            self.removed_matched.load(Ordering::Relaxed),
            self.removed_missed.load(Ordering::Relaxed),
        )
    }

    /// Sampled extractions whose rank estimate was nonzero (a strictly
    /// better element was still queued — "wasted" priority work).
    pub fn wasted(&self) -> u64 {
        self.wasted.load(Ordering::Relaxed)
    }

    /// Estimated rank quantile (`p ∈ [0, 1]`) over all sampled
    /// extractions so far.
    pub fn rank_quantile(&self, p: f64) -> u64 {
        self.est_rank.quantile(p)
    }

    /// The estimated-rank histogram (values pre-scaled by `2^shift`).
    pub fn est_rank_hist(&self) -> &Histogram {
        &self.est_rank
    }

    /// The staleness-age histogram (ns between a sampled key's insert
    /// and its extraction).
    pub fn staleness_hist(&self) -> &Histogram {
        &self.staleness_ns
    }

    /// Export everything as `quality.*` metrics into `snap`.
    pub fn snapshot_into(&self, snap: &mut Snapshot) {
        let (si, st, dr, se, ma, mi, sr, rm, rs) = self.counters();
        snap.push_counter("quality.sampled_inserts", si);
        snap.push_counter("quality.sampled_extracts", se);
        snap.push_counter("quality.matched", ma);
        snap.push_counter("quality.missed", mi);
        snap.push_counter("quality.dropped", dr);
        snap.push_counter("quality.stored", st);
        snap.push_counter("quality.removed", sr);
        snap.push_counter("quality.removed_matched", rm);
        snap.push_counter("quality.removed_missed", rs);
        snap.push_gauge("quality.reservoir.live", self.live() as i64);
        snap.push_gauge("quality.reservoir.slots", self.slots() as i64);
        snap.push_gauge("quality.sample_shift", u64::from(self.shift) as i64);
        let wasted = self.wasted();
        snap.push_ratio(
            "quality.wasted_ratio",
            if se == 0 {
                0.0
            } else {
                wasted as f64 / se as f64
            },
        );
        snap.push_hist("quality.est_rank", &self.est_rank);
        snap.push_hist("quality.staleness_ns", &self.staleness_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_zero_is_exact_within_reservoir() {
        let est = RankEstimator::with_slots(0, 128);
        for k in [5u64, 1, 9, 7, 3] {
            est.note_insert(k);
        }
        // Extract 1 with {3, 5, 7, 9} live: rank 4.
        assert_eq!(est.note_extract(1), Some(4));
        // Extract 9 (the max): rank 0.
        assert_eq!(est.note_extract(9), Some(0));
        assert_eq!(est.note_extract(5), Some(1));
        assert_eq!(est.live(), 2);
        let (si, st, dr, se, ma, mi, ..) = est.counters();
        assert_eq!((si, st, dr), (5, 5, 0));
        assert_eq!((se, ma, mi), (3, 3, 0));
    }

    #[test]
    fn equal_keys_are_multiset_not_greater() {
        let est = RankEstimator::with_slots(0, 16);
        est.note_insert(10);
        est.note_insert(10);
        est.note_insert(20);
        // Equal key still live is not "strictly greater".
        assert_eq!(est.note_extract(10), Some(1));
        assert_eq!(est.note_extract(10), Some(1));
        assert_eq!(est.note_extract(20), Some(0));
        assert_eq!(est.live(), 0);
    }

    #[test]
    fn sampling_decision_is_consistent_and_near_rate() {
        let est = RankEstimator::new(6);
        let mut sampled = 0u64;
        for k in 0..100_000u64 {
            if est.sampled(k) {
                sampled += 1;
                assert!(est.sampled(k), "decision must be stable");
            }
        }
        // 1/64 of 100k ≈ 1562; allow generous tolerance for hash shape.
        assert!(
            (800..2600).contains(&sampled),
            "sample rate off: {sampled}/100000"
        );
    }

    #[test]
    fn reservoir_overflow_drops_and_counts() {
        let est = RankEstimator::with_slots(0, 4);
        for k in 0..10u64 {
            est.note_insert(k);
        }
        let (si, st, dr, ..) = est.counters();
        assert_eq!(si, 10);
        assert_eq!(st, 4);
        assert_eq!(dr, 6);
        assert_eq!(est.live(), 4);
        // A stored key still matches; a dropped key misses.
        assert!(est.note_extract(0).is_some());
        let (_, _, _, se, ma, mi, ..) = est.counters();
        assert_eq!(se, 1);
        assert_eq!(ma + mi, 1);
    }

    #[test]
    fn note_remove_releases_without_rank_sample() {
        let est = RankEstimator::with_slots(0, 16);
        est.note_insert(1);
        est.note_insert(2);
        est.note_remove(1);
        assert_eq!(est.live(), 1);
        assert_eq!(est.est_rank_hist().count(), 0);
        let (.., sr, rm, rs) = est.counters();
        assert_eq!((sr, rm, rs), (1, 1, 0));
        // Removing an untracked key misses.
        est.note_remove(99);
        let (.., rm, rs) = est.counters();
        assert_eq!((rm, rs), (1, 1));
    }

    #[test]
    fn estimate_scales_by_sampling_rate() {
        // shift 2: rate 1/4, estimates are multiples of 4.
        let est = RankEstimator::with_slots(2, 4096);
        let mut tracked: Vec<u64> = (0..4096u64).filter(|&k| est.sampled(k)).collect();
        assert!(tracked.len() > 16, "need enough sampled keys");
        for &k in &tracked {
            est.note_insert(k);
        }
        tracked.sort_unstable();
        let lowest = tracked[0];
        let greater = (tracked.len() - 1) as u64;
        assert_eq!(est.note_extract(lowest), Some(greater << 2));
    }

    #[test]
    fn concurrent_hammer_conserves_counters() {
        let est = std::sync::Arc::new(RankEstimator::with_slots(0, 4096));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let est = std::sync::Arc::clone(&est);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let k = t * 1000 + i;
                        est.note_insert(k);
                        est.note_extract(k);
                    }
                });
            }
        });
        let (si, st, dr, se, ma, mi, ..) = est.counters();
        assert_eq!(si, 4000);
        assert_eq!(se, 4000);
        assert_eq!(si, st + dr);
        assert_eq!(se, ma + mi);
        assert_eq!(est.live() as u64, st - ma);
    }

    #[test]
    fn snapshot_exports_quality_names() {
        let est = RankEstimator::new(0);
        est.note_insert(7);
        est.note_extract(7);
        let mut s = Snapshot::new();
        est.snapshot_into(&mut s);
        assert_eq!(s.counter("quality.sampled_inserts"), Some(1));
        assert_eq!(s.counter("quality.matched"), Some(1));
        assert_eq!(s.gauge("quality.reservoir.live"), Some(0));
        assert_eq!(s.ratio("quality.wasted_ratio"), Some(0.0));
        assert!(s.hist("quality.est_rank").is_some());
        assert!(s.hist("quality.staleness_ns").is_some());
    }
}
