//! Seeded property test: `Snapshot::to_json` -> `Snapshot::from_json`
//! is the identity on any snapshot the writer can produce.
//!
//! The JSON layer is hand-rolled on both sides (zero-dependency
//! policy), so this is the test that keeps the two in sync: every
//! section (meta, counters, gauges, ratios, histograms incl. sparse
//! bucket lists, summary, series) is populated from a seeded
//! [`fault::DetRng`] and must survive the round trip exactly.
//!
//! Domain notes baked into the generator:
//! * names are generated pre-sorted and unique — `from_json` reads
//!   objects through a `BTreeMap`, so documents come back name-sorted
//!   (series are an array and keep their order);
//! * numeric magnitudes stay below 2^53 — the parser goes through
//!   `f64`, which is also what any external JSON consumer would see;
//! * `f64` values rely on Rust's shortest-round-trip `Display`, so any
//!   finite double is fair game (NaN/Inf serialize as `null` and are
//!   exercised by the unit tests, not here — `null` parses back as NaN
//!   which breaks `==` by design).

use fault::DetRng;
use obs::{Histogram, Series, Snapshot};

/// A finite f64 with a wide dynamic range (including negatives and
/// subnormal-ish magnitudes), never NaN/Inf.
fn finite_f64(rng: &mut DetRng) -> f64 {
    let mantissa = (rng.next_u64() % (1 << 53)) as f64;
    let scale = (rng.next_u64() % 60) as i32 - 30;
    let sign = if rng.next_u64().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    };
    sign * mantissa * 2f64.powi(scale)
}

fn random_snapshot(seed: u64) -> Snapshot {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut s = Snapshot::new();
    // Sorted, unique names: the parser returns sections name-sorted.
    s.push_meta("args", "--seeded property test \"quoted\" \\ slash");
    s.push_meta("bin", &format!("roundtrip-{seed:#x}"));
    for i in 0..(1 + rng.next_u64() % 6) {
        s.push_counter(&format!("c{i:02}.ops"), rng.next_u64() % (1 << 53));
    }
    for i in 0..(1 + rng.next_u64() % 6) {
        let mag = (rng.next_u64() % (1 << 53)) as i64;
        let v = if rng.next_u64().is_multiple_of(2) {
            mag
        } else {
            -mag
        };
        s.push_gauge(&format!("g{i:02}.depth"), v);
    }
    for i in 0..(1 + rng.next_u64() % 4) {
        s.push_ratio(&format!("r{i:02}.frac"), finite_f64(&mut rng));
    }
    for i in 0..(1 + rng.next_u64() % 4) {
        let h = Histogram::new();
        // Edge buckets on purpose: the zero bucket and a top-range
        // value, plus a random middle population. Sums stay < 2^53.
        h.record(0);
        h.record(1 << 52);
        for _ in 0..(rng.next_u64() % 64) {
            h.record(rng.next_u64() % (1 << 40));
        }
        s.push_hist(&format!("h{i:02}.lat_ns"), &h);
    }
    for i in 0..(1 + rng.next_u64() % 5) {
        s.push_summary(
            &format!("s{i:02}.throughput_ops_per_s"),
            finite_f64(&mut rng),
        );
    }
    for i in 0..(rng.next_u64() % 3) {
        let cols = 1 + (rng.next_u64() % 3) as usize;
        s.push_series(Series {
            // Series keep array order: exercise that by naming them in
            // REVERSE order — sorting here would hide an order bug.
            name: format!("series.{}", 9 - i),
            columns: (0..cols).map(|c| format!("col{c}")).collect(),
            rows: (0..rng.next_u64() % 8)
                .map(|_| (0..cols).map(|_| finite_f64(&mut rng)).collect())
                .collect(),
        });
    }
    s
}

#[test]
fn to_json_from_json_round_trips_random_snapshots() {
    for seed in 0..64u64 {
        let snap = random_snapshot(0x5EED_0000 + seed);
        let json = snap.to_json();
        let back = Snapshot::from_json(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{json}"));
        assert_eq!(snap, back, "seed {seed}: round trip changed the snapshot");
        // And the round trip is a fixed point: serializing the parsed
        // snapshot reproduces the document byte for byte.
        assert_eq!(json, back.to_json(), "seed {seed}: unstable serialization");
    }
}

#[test]
fn round_trip_covers_histogram_edge_buckets() {
    let h = Histogram::new();
    h.record(0);
    h.record(1);
    h.record(u64::MAX >> 12); // top log-linear range, still < 2^53
    let mut s = Snapshot::new();
    s.push_hist("edges", &h);
    let back = Snapshot::from_json(&s.to_json()).unwrap();
    let hb = back.hist("edges").unwrap();
    assert_eq!(hb.count, 3);
    assert_eq!(hb.min, 0);
    assert_eq!(hb.max, u64::MAX >> 12);
    assert_eq!(hb.buckets.len(), 3, "three distinct buckets survive");
    assert_eq!(s.hist("edges").unwrap(), hb);
}
