//! Property test: every metric registered in a [`obs::Registry`]
//! appears in the rendered `/metrics` Prometheus text exactly once
//! (counters/gauges as one sample line, histograms as one family with
//! one `_sum` and one `_count`), across randomly generated metric
//! names including the characters the renderer must mangle and label
//! suffixes it must parse.
//!
//! Seeded xorshift generator — failures print the seed so a run is
//! reproducible, and CI sees a deterministic default.

use obs::{render_prometheus, Registry};

/// xorshift64* — the same generator family the queue's random-leaf
/// probe uses; good enough for name shuffling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() % xs.len() as u64) as usize]
    }
}

/// A random dotted metric name, sometimes with characters that need
/// mangling (`-`, `/`) or an inline label suffix (`{k=v}`).
fn random_name(rng: &mut Rng, i: usize) -> String {
    let stems = ["queue", "sync", "pool", "zmsq", "7seg", "very-hot"];
    let mids = ["sojourn", "wait", "est_rank", "shed/ratio", "x"];
    let mut name = format!("{}.{}.m{}", rng.pick(&stems), rng.pick(&mids), i);
    if rng.next().is_multiple_of(3) {
        name.push_str(&format!("{{site=s{}}}", rng.next() % 4));
    }
    name
}

/// Count non-comment lines in `text` whose sample name equals `name`
/// (exact match on the text before the first `{` or space).
fn sample_lines(text: &str, name: &str) -> usize {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter(|l| {
            let head = l.split([' ', '{']).next().unwrap_or("");
            head == name
        })
        .count()
}

/// The renderer's name mangling, reimplemented for the assertion side:
/// strip an inline `{k=v}` label suffix, then map every character
/// outside `[a-zA-Z0-9_:]` to `_`, prefixing a leading digit.
fn expected_base(name: &str) -> String {
    let base = match name.find('{') {
        Some(i) if name.ends_with('}') && name[i..].contains('=') => &name[..i],
        _ => name,
    };
    let mut out = String::new();
    for (i, c) in base.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[test]
fn every_registry_metric_renders_exactly_once() {
    let seed = std::env::var("PROM_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE_u64);
    let mut rng = Rng(seed | 1);

    for round in 0..20 {
        let reg = Registry::new();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        let n = 1 + (rng.next() % 12) as usize;
        for i in 0..n {
            // Distinct index per metric: the registry dedupes by name,
            // and a name that is both a counter and a gauge would be
            // invalid Prometheus output anyway.
            match rng.next() % 3 {
                0 => {
                    let name = random_name(&mut rng, i);
                    reg.counter(&name).add(rng.next() % 1000);
                    counters.push(name);
                }
                1 => {
                    let name = random_name(&mut rng, i);
                    reg.gauge(&name).set((rng.next() % 1000) as i64);
                    gauges.push(name);
                }
                _ => {
                    let name = random_name(&mut rng, i);
                    let h = reg.histogram(&name);
                    for _ in 0..(rng.next() % 5) {
                        h.record(rng.next() % 100_000);
                    }
                    hists.push(name);
                }
            }
        }

        let text = render_prometheus(&reg.snapshot());
        let ctx = |name: &str| format!("seed {seed:#x} round {round} metric {name:?}:\n{text}");

        for name in &counters {
            let base = expected_base(name);
            assert_eq!(sample_lines(&text, &base), 1, "{}", ctx(name));
            assert_eq!(
                text.matches(&format!("# TYPE {base} counter")).count(),
                1,
                "{}",
                ctx(name)
            );
        }
        for name in &gauges {
            let base = expected_base(name);
            assert_eq!(sample_lines(&text, &base), 1, "{}", ctx(name));
        }
        for name in &hists {
            let base = expected_base(name);
            // One family: exactly one _sum, one _count, and at least
            // the +Inf bucket; exactly one TYPE line.
            assert_eq!(
                sample_lines(&text, &format!("{base}_sum")),
                1,
                "{}",
                ctx(name)
            );
            assert_eq!(
                sample_lines(&text, &format!("{base}_count")),
                1,
                "{}",
                ctx(name)
            );
            assert!(
                sample_lines(&text, &format!("{base}_bucket")) >= 1,
                "{}",
                ctx(name)
            );
            assert_eq!(
                text.matches(&format!("# TYPE {base} histogram")).count(),
                1,
                "{}",
                ctx(name)
            );
        }
    }
}
