//! Umbrella crate for the ZMSQ reproduction workspace.
//!
//! The real library lives in the member crates; this package hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). Re-exports below give examples and tests one import root.

pub use baselines;
pub use pq_traits;
pub use smr;
pub use workloads;
pub use zmsq;
pub use zmsq_graph;
pub use zmsq_sync;
