//! A priority job scheduler with blocking workers — the paper's
//! motivating scenario (§1: "consider a priority scheduler for
//! client-submitted jobs: as long as the customer paying for high
//! priority work is guaranteed the service-level agreement, it does not
//! matter if other work, for other customers, occasionally happens
//! first") and §3.6's blocking requirement ("production systems face
//! multi-tenancy and pay-for-service constraints... vendors and
//! customers prefer that waiting threads block instead of spin").
//!
//! Premium jobs get priority 1000+, standard jobs 100+. Workers block on
//! the futex buffer when idle (no spinning), and we verify the SLA-style
//! property: premium jobs experience far lower queueing delay.
//!
//! Run with: `cargo run --release --example job_scheduler`

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use zmsq::{Zmsq, ZmsqConfig};

#[derive(Clone, Copy)]
struct Job {
    #[allow(dead_code)] // a real scheduler would dispatch on this
    id: u64,
    premium: bool,
    submitted_ns: u64,
}

fn main() {
    const WORKERS: usize = 4;
    const JOBS: u64 = 50_000;
    const PREMIUM_EVERY: u64 = 10;

    // Blocking enabled: idle workers park on the circular futex buffer.
    let queue: Zmsq<Job> = Zmsq::with_config(
        ZmsqConfig::default()
            .batch(16)
            .target_len(32)
            .blocking(true),
    );
    let epoch = Instant::now();

    let premium_wait = AtomicU64::new(0);
    let premium_count = AtomicU64::new(0);
    let standard_wait = AtomicU64::new(0);
    let standard_count = AtomicU64::new(0);
    let done = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Workers: block while the queue is empty, exit after close().
        for w in 0..WORKERS {
            let queue = &queue;
            let (pw, pc) = (&premium_wait, &premium_count);
            let (sw, sc) = (&standard_wait, &standard_count);
            let done = &done;
            s.spawn(move || {
                let mut handled = 0u64;
                while let Some((_prio, job)) = queue.extract_max_blocking() {
                    let waited =
                        (epoch.elapsed().as_nanos() as u64).saturating_sub(job.submitted_ns);
                    if job.premium {
                        pw.fetch_add(waited, Ordering::Relaxed);
                        pc.fetch_add(1, Ordering::Relaxed);
                    } else {
                        sw.fetch_add(waited, Ordering::Relaxed);
                        sc.fetch_add(1, Ordering::Relaxed);
                    }
                    // Simulate a little work per job.
                    std::hint::black_box((0..50).sum::<u64>());
                    handled += 1;
                    done.fetch_add(1, Ordering::Relaxed);
                }
                println!("worker {w} handled {handled} jobs and shut down cleanly");
            });
        }

        // Producer: submit bursts with pauses, so workers actually park.
        let queue = &queue;
        let done = &done;
        s.spawn(move || {
            for id in 0..JOBS {
                let premium = id % PREMIUM_EVERY == 0;
                let base = if premium { 1000 } else { 100 };
                let job = Job {
                    id,
                    premium,
                    submitted_ns: epoch.elapsed().as_nanos() as u64,
                };
                queue.insert(base + (id % 50), job);
                if id % 5_000 == 4_999 {
                    // Burst gap: consumers drain and block.
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            // Wait for completion, then wake everyone for shutdown.
            while done.load(Ordering::Relaxed) < JOBS {
                std::thread::yield_now();
            }
            queue.close();
        });
    });

    let pc = premium_count.into_inner().max(1);
    let sc = standard_count.into_inner().max(1);
    let p_ms = premium_wait.into_inner() as f64 / pc as f64 / 1e6;
    let s_ms = standard_wait.into_inner() as f64 / sc as f64 / 1e6;
    println!("premium jobs:  {pc:>6} handled, mean queueing delay {p_ms:.3} ms");
    println!("standard jobs: {sc:>6} handled, mean queueing delay {s_ms:.3} ms");
    assert_eq!(pc + sc, JOBS, "every job must be handled exactly once");
    println!(
        "SLA check: premium delay is {:.2}x the standard delay (lower is better)",
        p_ms / s_ms.max(1e-9)
    );
}
