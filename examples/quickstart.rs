//! Quickstart: the ZMSQ public API in two minutes.
//!
//! Run with: `cargo run --release --example quickstart`

use zmsq::{Reclamation, Zmsq, ZmsqConfig};

fn main() {
    // The paper's recommended default configuration: batch = 48,
    // targetLen = 72 (§4.2), hazard-pointer reclamation.
    let queue: Zmsq<&'static str> = Zmsq::new();

    queue.insert(10, "backup job");
    queue.insert(95, "page on-call");
    queue.insert(60, "rebuild index");

    // Relaxed extraction: a high-priority element, never None while the
    // queue is nonempty. Within any batch+1 consecutive extractions the
    // true maximum is guaranteed to appear (§3.7).
    let (prio, task) = queue.extract_max().expect("nonempty");
    println!("first task out: {task} (priority {prio})");

    // Strict mode (batch = 0) behaves exactly like the mound: always the
    // true maximum, at the cost of root contention under load.
    let strict: Zmsq<&'static str> = Zmsq::with_config(ZmsqConfig::strict());
    strict.insert(1, "low");
    strict.insert(2, "mid");
    strict.insert(3, "high");
    assert_eq!(strict.extract_max(), Some((3, "high")));
    println!("strict mode returns the exact max, always");

    // Tuning: smaller batch = tighter relaxation; ConsumerWait avoids
    // hazard pointers via the lagging-consumer wait (§3.5).
    let tuned: Zmsq<u64> = Zmsq::with_config(
        ZmsqConfig::default()
            .batch(8)
            .target_len(16)
            .reclamation(Reclamation::ConsumerWait),
    );
    for i in 0..1000 {
        tuned.insert(i, i);
    }
    let (top, _) = tuned.extract_max().unwrap();
    println!("tuned queue: extracted priority {top} of 0..1000");

    // Concurrent use: share by reference across scoped threads (or via Arc).
    let shared: Zmsq<u64> = Zmsq::new();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let q = &shared;
            s.spawn(move || {
                for i in 0..10_000 {
                    q.insert(t * 10_000 + i, i);
                }
            });
        }
    });
    println!("4 threads inserted {} elements", shared.len_hint());

    let popped = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (q, popped) = (&shared, &popped);
            s.spawn(move || {
                while q.extract_max().is_some() {
                    popped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    println!(
        "4 threads extracted {} elements; queue reports empty: {}",
        popped.into_inner(),
        shared.extract_max().is_none()
    );

    // Operation statistics show the relaxation at work: most extractions
    // hit the pool, few touch the root.
    let stats = shared.stats();
    println!(
        "stats: {} inserts, {} extracts, root access ratio {:.1}%",
        stats.inserts,
        stats.extracts,
        100.0 * stats.root_access_ratio()
    );
}
