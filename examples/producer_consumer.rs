//! Producer/consumer handoff comparing spinning and blocking consumers
//! (§3.6, §4.4).
//!
//! Run with: `cargo run --release --example producer_consumer [items]`

use workloads::keys::KeyDist;
use workloads::prodcons::{run_prodcons_blocking, run_prodcons_spin, ProdConsConfig};
use zmsq::{Zmsq, ZmsqConfig};

fn main() {
    let items: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);

    let cfg = ProdConsConfig {
        producers: 2,
        consumers: 6,
        total_items: items,
        keys: KeyDist::UniformBits { bits: 20 },
        seed: 42,
    };
    println!(
        "transferring {items} items: {} producers -> {} consumers (batch = 32)\n",
        cfg.producers, cfg.consumers
    );

    // Spinning consumers: lowest latency while cores are free, but they
    // burn CPU whenever the queue runs dry.
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(32).target_len(48));
    let spin = run_prodcons_spin(&q, &cfg);
    assert_eq!(spin.received, items);
    println!(
        "spinning:  wall {:>8.1?}  cpu {:>8.1?}  mean handoff {:>7.0} ns  misses {}",
        spin.elapsed, spin.cpu_time, spin.mean_handoff_ns, spin.misses
    );

    // Blocking consumers: park on the futex buffer when idle. The paper's
    // result (Fig. 4): slightly higher latency at low thread counts, but
    // far less CPU burned — and strictly better once threads exceed cores.
    let q: Zmsq<u64> = Zmsq::with_config(
        ZmsqConfig::default()
            .batch(32)
            .target_len(48)
            .blocking(true),
    );
    let block = run_prodcons_blocking(&q, &cfg);
    assert_eq!(block.received, items);
    println!(
        "blocking:  wall {:>8.1?}  cpu {:>8.1?}  mean handoff {:>7.0} ns  misses {}",
        block.elapsed, block.cpu_time, block.mean_handoff_ns, block.misses
    );

    let saved = spin.cpu_time.as_secs_f64() - block.cpu_time.as_secs_f64();
    println!(
        "\nblocking consumers {} {:.2}s of CPU time on this run.",
        if saved >= 0.0 { "saved" } else { "cost" },
        saved.abs()
    );
}
