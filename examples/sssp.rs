//! Parallel single-source shortest paths with a relaxed priority queue —
//! the paper's flagship application (§1, §4.6).
//!
//! "In many graph algorithms, processing elements out of order still
//! contributes to the forward progress of an application... consider
//! Dijkstra's single-source shortest path algorithm: the work done
//! processing elements out of order still advances the computation
//! toward a solution."
//!
//! This example generates a power-law graph, solves SSSP with ZMSQ and
//! with a strict coarse-locked heap, validates both against sequential
//! Dijkstra, and reports the relaxation's cost (wasted re-expansions)
//! and benefit (fewer serialized root accesses).
//!
//! Run with: `cargo run --release --example sssp [nodes] [threads]`

use baselines::CoarseHeap;
use zmsq::{Zmsq, ZmsqConfig};
use zmsq_graph::{gen, parallel_sssp, sequential_sssp};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("generating a {nodes}-node power-law graph (Artist-like, §4.6)...");
    let graph = gen::barabasi_albert(nodes, 12, 100, 7);
    println!(
        "graph: {} nodes, {} directed edges, avg degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree()
    );
    let source = graph.max_degree_node();

    let t0 = std::time::Instant::now();
    let reference = sequential_sssp(&graph, source);
    println!("sequential Dijkstra: {:?}", t0.elapsed());
    let reachable = reference
        .iter()
        .filter(|&&d| d != zmsq_graph::INFINITY)
        .count();
    println!("{reachable} nodes reachable from source {source}");

    // ZMSQ with the paper's SSSP tuning (batch=42, targetLen=64, §4.6).
    let zmsq_queue: Zmsq<u32> = Zmsq::with_config(ZmsqConfig::sssp_tuned());
    let r = parallel_sssp(&graph, source, &zmsq_queue, threads);
    assert_eq!(r.dist, reference, "relaxed SSSP must still be exact");
    println!(
        "ZMSQ    ({threads} threads): {:?}, {} pops ({:.1}% wasted), root access ratio {:.2}%",
        r.elapsed,
        r.processed + r.wasted,
        100.0 * r.waste_ratio(),
        100.0 * zmsq_queue.stats().root_access_ratio(),
    );

    let heap: CoarseHeap<u32> = CoarseHeap::new();
    let r2 = parallel_sssp(&graph, source, &heap, threads);
    assert_eq!(r2.dist, reference);
    println!(
        "coarse heap ({} threads): {:?}, {} pops ({:.1}% wasted)",
        threads,
        r2.elapsed,
        r2.processed + r2.wasted,
        100.0 * r2.waste_ratio(),
    );

    println!(
        "\nthe relaxed queue re-expands {:.1}% of pops as its price for avoiding\n\
         the strict queue's serialized extract bottleneck — and both arrive at\n\
         exactly the same distances.",
        100.0 * r.waste_ratio()
    );
}
