//! Discrete-event simulation on a priority queue — the other classic
//! priority-queue workload (alongside SSSP) that motivates relaxed
//! queues: events must fire in (approximately) time order.
//!
//! We simulate an M/M/c-style service center: arrivals are scheduled
//! into the future, each arrival books a service-completion event.
//! Strict mode (`batch = 0`) gives an exact event-driven simulation;
//! the relaxed queue processes events slightly out of order, and we
//! measure how much the observable statistics drift — the quantitative
//! version of the paper's "programs can tolerate relaxation" claim.
//!
//! Run with: `cargo run --release --example event_simulation`

use zmsq::{Zmsq, ZmsqConfig};

const HORIZON: u64 = 1_000_000; // simulated nanoseconds
const SERVERS: u64 = 4;

#[derive(Clone, Copy, Debug)]
enum Event {
    Arrival,
    Departure,
}

/// Simple LCG for reproducible inter-arrival/service times.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn exp(&mut self, mean: u64) -> u64 {
        // Geometric approximation of an exponential with the given mean.
        let u = (self.next() % 10_000) as f64 / 10_000.0;
        ((-(1.0 - u).ln()) * mean as f64) as u64 + 1
    }
}

/// Run the simulation on the given queue configuration; returns
/// (events processed, total wait time, max queue depth, out-of-order count).
fn simulate(cfg: ZmsqConfig) -> (u64, u64, u64, u64) {
    // Min-queue via priority inversion: earlier time = higher priority.
    let events: Zmsq<Event> = Zmsq::with_config(cfg);
    let to_prio = |time: u64| u64::MAX - time;
    let to_time = |prio: u64| u64::MAX - prio;

    let mut rng = Rng(0xD15C0);
    let mut busy_servers = 0u64;
    let mut waiting = 0u64;
    let mut max_waiting = 0u64;
    let mut processed = 0u64;
    let mut total_wait = 0u64;
    let mut out_of_order = 0u64;
    let mut last_time = 0u64;

    events.insert(to_prio(rng.exp(50)), Event::Arrival);
    while let Some((prio, ev)) = events.extract_max() {
        let now = to_time(prio);
        if now > HORIZON {
            break;
        }
        if now < last_time {
            out_of_order += 1; // relaxation made time run backwards
        }
        last_time = last_time.max(now);
        processed += 1;
        match ev {
            Event::Arrival => {
                // Schedule the next arrival.
                events.insert(to_prio(now + rng.exp(50)), Event::Arrival);
                if busy_servers < SERVERS {
                    busy_servers += 1;
                    events.insert(to_prio(now + rng.exp(180)), Event::Departure);
                } else {
                    waiting += 1;
                    max_waiting = max_waiting.max(waiting);
                    total_wait += rng.exp(180); // queueing delay estimate
                }
            }
            Event::Departure => {
                if waiting > 0 {
                    waiting -= 1;
                    events.insert(to_prio(now + rng.exp(180)), Event::Departure);
                } else {
                    busy_servers -= 1;
                }
            }
        }
    }
    (processed, total_wait, max_waiting, out_of_order)
}

fn main() {
    println!("M/M/{SERVERS} service-center simulation to t = {HORIZON}\n");
    let (p0, w0, q0, o0) = simulate(ZmsqConfig::strict());
    println!("strict  (batch=0):  {p0} events, total wait {w0}, max queue {q0}, out-of-order {o0}");

    for batch in [4usize, 16, 48] {
        let (p, w, q, o) = simulate(ZmsqConfig::default().batch(batch).target_len(batch.max(8)));
        let drift = (w as f64 - w0 as f64).abs() / w0.max(1) as f64 * 100.0;
        println!(
            "relaxed (batch={batch:>2}): {p} events, total wait {w} ({drift:.1}% drift), \
             max queue {q}, out-of-order {o}"
        );
    }
    println!(
        "\nsingle-threaded, the relaxed queue still fires events nearly in order\n\
         (out-of-order counts stay tiny relative to event volume), so simulation\n\
         statistics track the exact run — the tolerance relaxed PQs rely on."
    );
}
