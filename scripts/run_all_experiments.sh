#!/usr/bin/env bash
# Regenerate every table and figure of the paper.
#
# Usage:
#   scripts/run_all_experiments.sh          # quick smoke-scale sweep (~minutes)
#   FULL=1 scripts/run_all_experiments.sh   # paper-scale runs (hours on a laptop)
#
# CSV outputs land in results/.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK="--quick"
THREADS="--threads 1,2,4"
if [[ "${FULL:-0}" == "1" ]]; then
  QUICK=""
  THREADS=""
fi

mkdir -p results
cargo build --release -p bench

cargo run --release -q -p bench --bin fig2_locks      -- $QUICK $THREADS --mix insert --stats | tee results/fig2a_locks.csv
cargo run --release -q -p bench --bin fig2_locks      -- $QUICK $THREADS --mix half --stats   | tee results/fig2b_locks.csv
cargo run --release -q -p bench --bin fig3_params     -- $QUICK $THREADS --mix insert        | tee results/fig3a_params.csv
cargo run --release -q -p bench --bin fig3_params     -- $QUICK $THREADS --mix half          | tee results/fig3b_params.csv
cargo run --release -q -p bench --bin table1_accuracy -- $QUICK                              | tee results/table1_accuracy.csv
cargo run --release -q -p bench --bin fig4_blocking   -- $QUICK                              | tee results/fig4_blocking.csv
cargo run --release -q -p bench --bin fig5_micro      -- $QUICK $THREADS --mix insert        | tee results/fig5a_micro.csv
cargo run --release -q -p bench --bin fig5_micro      -- $QUICK $THREADS --mix two-thirds    | tee results/fig5b_micro.csv
cargo run --release -q -p bench --bin fig5_micro      -- $QUICK $THREADS --mix half          | tee results/fig5c_micro.csv
cargo run --release -q -p bench --bin fig5_micro      -- $QUICK $THREADS --mix half --key-bits 7 | tee results/fig5c_micro_7bit.csv
cargo run --release -q -p bench --bin fig6_prodcons   -- $QUICK                              | tee results/fig6_prodcons.csv
cargo run --release -q -p bench --bin fig7_sssp       -- $QUICK $THREADS                     | tee results/fig7_sssp.csv
cargo run --release -q -p bench --bin fig8_tuning     -- $QUICK $THREADS                     | tee results/fig8_tuning.csv
cargo run --release -q -p bench --bin sec32_stability -- $QUICK                              | tee results/sec32_stability.csv
cargo run --release -q -p bench --bin sec32_stability -- $QUICK --probe-factor 4             | tee results/sec32_stability_pf4.csv
cargo run --release -q -p bench --bin ablation        -- $QUICK                              | tee results/ablation.csv
cargo run --release -q -p bench --bin ops_latency     -- $QUICK                              | tee results/ops_latency.csv
cargo run --release -q -p bench --bin insert_profile                                          | tee results/insert_profile.txt
cargo run --release -q -p bench --bin accuracy_transient -- $QUICK                            | tee results/accuracy_transient.csv
cargo run --release -q -p bench --bin sharded_adapt   -- $QUICK                              | tee results/sharded_adapt.csv
cargo run --release -q -p bench --bin overload        -- $QUICK --assert --metrics results/overload.metrics.json | tee results/overload.csv
cargo run --release -q -p bench --bin shootout        -- $QUICK --assert --metrics results/shootout.metrics.json | tee results/shootout.csv

echo "done — CSVs in results/"
