#!/usr/bin/env python3
"""Perf-trajectory regression gate over bench `summary` blocks.

Compares the `summary` section of two `--metrics` JSON documents (a
checked-in `results/BENCH_<bin>.json` baseline and a fresh run) and
exits nonzero when the new run regresses:

* **throughput keys** (name contains ``throughput`` or ends with
  ``_ops_per_s``): higher is better; fail when the new value falls more
  than ``--throughput-tolerance`` percent (default 10) below baseline.
* **rank keys** (name ends with ``est_rank_p99``): lower is better;
  fail when the new value exceeds ``baseline * --rank-factor`` (default
  2.0) plus ``--rank-slack`` (default 128 — at the default 1/64
  sampling rate the estimator's rank quantum is 64, so tiny baselines
  would otherwise gate on one quantum of noise).
* **insert-p50 keys** (name ends with ``insert_p50_ns``): lower is
  better; fail when the new value rises more than ``--p50-tolerance``
  percent (default 10) above baseline. The median is stable enough to
  gate on (unlike the tails) and is where an allocation slipped back
  onto the hot path shows first — the slab arm exists to keep it flat.
* **other latency keys** (name ends with ``_ns``): warn-only. Latency
  tails on shared CI runners are too noisy to gate on; the trend is
  still printed for the human reading the log.
* anything else: warn-only on large moves.

``--synthetic-drop PCT`` scales the new run's throughput values down
before comparing — the CI job uses it to prove the gate actually fires
(a gate that cannot fail is not a gate).

``--self-test`` runs the script's own unit checks (missing baseline,
one-sided keys, regression detection, clean pass) against synthetic
documents in a temp directory and exits 0/1; CI runs it before the
real comparison so gate bugs fail loudly instead of green.

Exit codes: 0 pass, 1 regression, 2 usage/parse error (missing or
unreadable file, missing summary block, or a summary key present on
only one side — a one-sided key means the bench matrix changed and the
baseline must be regenerated, not silently skipped).
"""

import argparse
import json
import sys


def die(msg: str) -> "NoReturn":  # noqa: F821 - py3.8 compat, no typing import
    print(f"compare_bench: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load_summary(path: str) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON: {e}")
    summary = doc.get("summary")
    if not isinstance(summary, dict) or not summary:
        die(f"{path} has no summary block (regenerate with a --metrics run)")
    bad = {k: v for k, v in summary.items() if not isinstance(v, (int, float))}
    if bad:
        die(f"{path} summary has non-numeric entries: {sorted(bad)}")
    return summary


def is_throughput(key: str) -> bool:
    return "throughput" in key or key.endswith("_ops_per_s")


def is_rank(key: str) -> bool:
    return key.endswith("est_rank_p99")


def is_insert_p50(key: str) -> bool:
    return key.endswith("insert_p50_ns")


def is_latency(key: str) -> bool:
    return key.endswith("_ns")


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("baseline", help="checked-in results/BENCH_<bin>.json")
    p.add_argument("new", help="freshly produced --metrics JSON")
    p.add_argument(
        "--throughput-tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="max allowed throughput drop in percent (default 10)",
    )
    p.add_argument(
        "--p50-tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="max allowed insert-p50 latency rise in percent (default 10)",
    )
    p.add_argument(
        "--rank-factor",
        type=float,
        default=2.0,
        metavar="F",
        help="max allowed est_rank_p99 growth factor (default 2.0)",
    )
    p.add_argument(
        "--rank-slack",
        type=float,
        default=128.0,
        metavar="N",
        help="additive est_rank_p99 slack on top of the factor (default 128)",
    )
    p.add_argument(
        "--synthetic-drop",
        type=float,
        default=0.0,
        metavar="PCT",
        help="scale new throughput down PCT%% before comparing (gate self-check)",
    )
    args = p.parse_args(argv)

    base = load_summary(args.baseline)
    new = load_summary(args.new)

    # A key on only one side means the two documents do not describe
    # the same bench matrix (a queue kind was added/removed, a summary
    # key was renamed, or the baseline is stale). Comparing the
    # intersection would silently un-gate whatever moved, so this is a
    # usage error, not a warning.
    only_base = sorted(set(base) - set(new))
    only_new = sorted(set(new) - set(base))
    if only_base or only_new:
        die(
            "summary keys present on only one side — "
            f"baseline only: {only_base or '[]'}, new run only: {only_new or '[]'} "
            "(bench matrix changed; regenerate the baseline)"
        )

    failures = []
    warnings = []

    for key in sorted(base):
        b, n = float(base[key]), float(new[key])
        if is_throughput(key):
            if args.synthetic_drop:
                n *= 1.0 - args.synthetic_drop / 100.0
            floor = b * (1.0 - args.throughput_tolerance / 100.0)
            delta = (n - b) / b * 100.0 if b else 0.0
            line = f"{key}: {b:.0f} -> {n:.0f} ({delta:+.1f}%)"
            if n < floor:
                failures.append(
                    f"{line} below the {args.throughput_tolerance:.0f}% tolerance"
                )
            else:
                print(f"ok   {line}")
        elif is_rank(key):
            ceil = b * args.rank_factor + args.rank_slack
            line = f"{key}: {b:.0f} -> {n:.0f} (ceiling {ceil:.0f})"
            if n > ceil:
                failures.append(f"{line} rank error regressed past the ceiling")
            else:
                print(f"ok   {line}")
        elif is_insert_p50(key):
            ceil = b * (1.0 + args.p50_tolerance / 100.0)
            delta = (n - b) / b * 100.0 if b else 0.0
            line = f"{key}: {b:.0f} -> {n:.0f} ns ({delta:+.1f}%)"
            if b > 0 and n > ceil:
                failures.append(
                    f"{line} above the {args.p50_tolerance:.0f}% insert-p50 tolerance"
                )
            else:
                print(f"ok   {line}")
        elif is_latency(key):
            if b > 0 and n > b * 2.0:
                warnings.append(f"{key}: {b:.0f} -> {n:.0f} ns (>2x, warn-only)")
            else:
                print(f"ok   {key}: {b:.0f} -> {n:.0f} ns")
        else:
            if b > 0 and (n > b * 2.0 or n < b * 0.5):
                warnings.append(f"{key}: {b:.6g} -> {n:.6g} (>2x move, warn-only)")
            else:
                print(f"ok   {key}: {b:.6g} -> {n:.6g}")

    for w in warnings:
        print(f"warn {w}")
    for f in failures:
        print(f"FAIL {f}")
    if failures:
        print(f"compare_bench: {len(failures)} regression(s) vs {args.baseline}")
        return 1
    print(f"compare_bench: pass ({args.new} vs {args.baseline})")
    return 0


def self_test() -> int:
    """Unit checks for the gate itself: each case invokes ``main`` on
    synthetic documents and asserts the exit code. Prints one line per
    case and returns 0 (all pass) or 1."""
    import contextlib
    import io
    import os
    import tempfile

    def doc(path: str, summary) -> str:
        with open(path, "w") as f:
            json.dump({"summary": summary}, f)
        return path

    def run(*argv) -> int:
        out = io.StringIO()
        try:
            with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
                return main(list(argv))
        except SystemExit as e:  # die() and argparse errors land here
            return int(e.code or 0)

    ok = [2_000_000.0, 150.0]  # throughput, est_rank_p99
    failed = 0
    with tempfile.TemporaryDirectory() as d:
        P50 = 120.0
        base = doc(
            os.path.join(d, "base.json"),
            {
                "q/throughput_ops_per_s": ok[0],
                "q/est_rank_p99": ok[1],
                "q/insert_p50_ns": P50,
            },
        )
        same = doc(
            os.path.join(d, "same.json"),
            {
                "q/throughput_ops_per_s": ok[0],
                "q/est_rank_p99": ok[1],
                "q/insert_p50_ns": P50,
            },
        )
        slow = doc(
            os.path.join(d, "slow.json"),
            {
                "q/throughput_ops_per_s": ok[0] * 0.5,
                "q/est_rank_p99": ok[1],
                "q/insert_p50_ns": P50,
            },
        )
        p50_bad = doc(
            os.path.join(d, "p50_bad.json"),
            {
                "q/throughput_ops_per_s": ok[0],
                "q/est_rank_p99": ok[1],
                "q/insert_p50_ns": P50 * 1.25,
            },
        )
        extra = doc(
            os.path.join(d, "extra.json"),
            {
                "q/throughput_ops_per_s": ok[0],
                "q/est_rank_p99": ok[1],
                "q/insert_p50_ns": P50,
                "q2/throughput_ops_per_s": 1.0,
            },
        )
        bad = os.path.join(d, "bad.json")
        with open(bad, "w") as f:
            f.write("{not json")
        cases = [
            ("identical summaries pass", run(base, same), 0),
            ("throughput drop fails", run(base, slow), 1),
            ("insert-p50 regression fails", run(base, p50_bad), 1),
            (
                "insert-p50 regression passes under a relaxed tolerance",
                run(base, p50_bad, "--p50-tolerance", "50"),
                0,
            ),
            ("synthetic drop trips the gate", run(base, same, "--synthetic-drop", "50"), 1),
            ("missing baseline is a usage error", run(os.path.join(d, "nope.json"), same), 2),
            ("unparseable JSON is a usage error", run(bad, same), 2),
            ("one-sided summary key is a usage error", run(base, extra), 2),
            ("one-sided key (baseline side) is a usage error", run(extra, same), 2),
        ]
    for name, got, want in cases:
        status = "ok  " if got == want else "FAIL"
        if got != want:
            failed += 1
        print(f"{status} self-test: {name} (exit {got}, want {want})")
    if failed:
        print(f"compare_bench: self-test: {failed} case(s) failed")
        return 1
    print("compare_bench: self-test passed")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    sys.exit(main())
