#!/usr/bin/env python3
"""Scrape and validate a bench's live introspection endpoints.

Stdlib-only (urllib + json). Hits a `--serve` listener's three
endpoints and validates:

* ``/healthz`` returns ``ok``.
* ``/metrics`` is well-formed Prometheus text exposition: one ``# TYPE``
  line per family, histogram bucket counts cumulative and monotone in
  ``le`` with the ``+Inf`` bucket equal to ``_count``, and the required
  introspection families present — sojourn histograms
  (``*queue_sojourn_ns``), per-site lock-wait attribution
  (``sync_wait_ns{site=...}``) and retained rank-error series digests
  (``obs_series_last{series=...quality.est_rank...}``).
* ``/snapshot.json`` parses and carries the snapshot's top-level keys.

Usage: scrape_introspection.py HOST:PORT [--metrics-out F]
                               [--snapshot-out F] [--require-sojourn-samples]

Exit codes: 0 valid, 1 validation failure, 2 endpoint unreachable.
"""

import argparse
import json
import re
import sys
import urllib.error
import urllib.request


def fetch(addr: str, path: str) -> str:
    url = f"http://{addr}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as r:
            if r.status != 200:
                print(f"scrape: {url} returned HTTP {r.status}", file=sys.stderr)
                sys.exit(2)
            return r.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as e:
        print(f"scrape: cannot reach {url}: {e}", file=sys.stderr)
        sys.exit(2)


SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (\S+)$")


def validate_metrics(text: str, require_sojourn_samples: bool) -> list:
    errors = []
    types = {}  # family -> kind
    samples = []  # (name, labels, value)
    for ln, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("# meta ") or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {ln}: malformed TYPE line: {line!r}")
                continue
            _, _, fam, kind = parts
            if fam in types:
                errors.append(f"line {ln}: duplicate # TYPE for family {fam}")
            types[fam] = kind
            continue
        if line.startswith("#"):
            errors.append(f"line {ln}: unexpected comment: {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {ln}: unparseable sample: {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            float(value)
        except ValueError:
            errors.append(f"line {ln}: non-numeric value {value!r} in {line!r}")
        samples.append((name, labels, value))

    # Histogram shape: per (family, labels-minus-le) the bucket counts
    # must be cumulative (non-decreasing as le grows, +Inf last and
    # equal to _count).
    buckets = {}
    for name, labels, value in samples:
        if not name.endswith("_bucket"):
            continue
        fam = name[: -len("_bucket")]
        le_m = re.search(r'le="([^"]*)"', labels)
        if not le_m:
            errors.append(f"{name}{labels}: bucket sample without le label")
            continue
        rest = re.sub(r',?le="[^"]*"', "", labels)
        if rest == "{}":  # le was the only label: match the bare _count name
            rest = ""
        le = float("inf") if le_m.group(1) == "+Inf" else float(le_m.group(1))
        buckets.setdefault((fam, rest), []).append((le, float(value)))
    counts = {
        (n[: -len("_count")], l): float(v)
        for n, l, v in samples
        if n.endswith("_count")
    }
    for (fam, rest), bs in buckets.items():
        bs.sort()
        if bs != sorted(bs, key=lambda x: (x[0], x[1])) or any(
            b2[1] < b1[1] for b1, b2 in zip(bs, bs[1:])
        ):
            errors.append(f"{fam}{rest}: bucket counts not cumulative: {bs}")
        if bs[-1][0] != float("inf"):
            errors.append(f"{fam}{rest}: missing +Inf bucket")
        elif (fam, rest) in counts and bs[-1][1] != counts[(fam, rest)]:
            errors.append(
                f"{fam}{rest}: +Inf bucket {bs[-1][1]} != _count {counts[(fam, rest)]}"
            )

    # Required introspection families.
    sojourn = [
        (f, r) for (f, r) in buckets if f.endswith("queue_sojourn_ns")
    ]
    if not sojourn:
        errors.append("no queue_sojourn_ns histogram family in /metrics")
    elif require_sojourn_samples and all(
        counts.get(k, 0) == 0 for k in sojourn
    ):
        errors.append("queue_sojourn_ns present but has zero samples")
    if not any(
        f == "sync_wait_ns" and "site=" in r for (f, r) in buckets
    ):
        errors.append("no sync_wait_ns{site=...} attribution family in /metrics")
    if not any(
        n == "obs_series_last" and "quality.est_rank" in l for n, l, _ in samples
    ):
        errors.append("no retained quality.est_rank series digest in /metrics")
    return errors


def main() -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("addr", help="host:port of a bench running with --serve")
    p.add_argument("--metrics-out", help="save the scraped /metrics text here")
    p.add_argument("--snapshot-out", help="save the scraped /snapshot.json here")
    p.add_argument(
        "--require-sojourn-samples",
        action="store_true",
        help="fail if the sojourn histograms are present but empty",
    )
    args = p.parse_args()

    health = fetch(args.addr, "/healthz").strip()
    if health != "ok":
        print(f"scrape: /healthz returned {health!r}, want 'ok'", file=sys.stderr)
        return 1

    metrics = fetch(args.addr, "/metrics")
    if args.metrics_out:
        with open(args.metrics_out, "w") as f:
            f.write(metrics)
    errors = validate_metrics(metrics, args.require_sojourn_samples)

    snap_text = fetch(args.addr, "/snapshot.json")
    if args.snapshot_out:
        with open(args.snapshot_out, "w") as f:
            f.write(snap_text)
    try:
        snap = json.loads(snap_text)
        for key in ("meta", "counters", "gauges", "ratios", "histograms", "series"):
            if key not in snap:
                errors.append(f"/snapshot.json missing top-level key {key!r}")
    except json.JSONDecodeError as e:
        errors.append(f"/snapshot.json is not valid JSON: {e}")

    for e in errors:
        print(f"FAIL {e}")
    if errors:
        print(f"scrape: {len(errors)} validation failure(s) against {args.addr}")
        return 1
    n_fams = metrics.count("# TYPE ")
    print(f"scrape: OK — /healthz, /snapshot.json and {n_fams} metric families valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
